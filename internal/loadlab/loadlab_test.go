package loadlab

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"esds/internal/core"
	"esds/internal/dtype"
	"esds/internal/transport"
)

// cellConfig is one cell of the hostile-network matrix. All workload
// randomness derives from Seed (the FaultNet shares it), so a failing
// cell's String() is its reproduction recipe.
type cellConfig struct {
	Seed     int64
	Profile  string
	Shards   int
	GrowTo   int // > Shards resizes mid-run; 0/== disables
	Replicas int
	Sessions int
	Rate     float64
	Duration time.Duration
	Objects  int // per session
}

func (c cellConfig) String() string {
	return fmt.Sprintf("seed=%d profile=%s shards=%d grow=%d replicas=%d sessions=%d rate=%.0f dur=%v objects=%d",
		c.Seed, c.Profile, c.Shards, c.GrowTo, c.Replicas, c.Sessions, c.Rate, c.Duration, c.Objects)
}

// runCell drives one cell end to end and returns the first violated
// property (nil when all hold):
//
//   - the mid-run resize (when configured) completes without error,
//   - liveness: every offered operation is answered after healing,
//   - no operation errors,
//   - convergence: every shard settles on one label order,
//   - exact strict read-back: each object's counter equals exactly its
//     acknowledged adds — no loss, no double-apply,
//   - zero answered-then-lost: every answered op id appears in a shard's
//     converged order,
//   - no replica faults,
//   - non-clean profiles actually injected faults (the cell would
//     otherwise prove nothing).
func runCell(cfg cellConfig) error {
	maxShards := cfg.Shards
	if cfg.GrowTo > maxShards {
		maxShards = cfg.GrowTo
	}
	prof, ok := ProfileByName(cfg.Profile, maxShards, cfg.Replicas)
	if !ok {
		return fmt.Errorf("unknown profile %q", cfg.Profile)
	}
	inner := transport.NewLiveNet()
	fnet := transport.NewFaultNet(inner, prof.NetConfig(cfg.Seed))
	ks := core.NewKeyspace(core.KeyspaceConfig{
		Shards:   cfg.Shards,
		Replicas: cfg.Replicas,
		DataType: dtype.Counter{},
		Network:  fnet,
		// Full gossip (no IncrementalGossip): FaultNet's loss, jitter, and
		// reordering break the FIFO-channel prerequisite of the incremental
		// mode; Memoize+Prune+Snapshot+batching all stay on.
		Options: core.Options{Memoize: true, Prune: true, Snapshot: true, BatchSize: 8},
	})
	defer func() {
		ks.Close()
		fnet.Close()
		inner.Close()
	}()
	ks.StartLiveGossip(2 * time.Millisecond)
	ks.StartLiveRetransmit(25 * time.Millisecond)
	ks.StartLiveBatchFlush(time.Millisecond)
	fnet.Start()

	// Mid-run online resize: fires halfway through the dispatch window,
	// racing the profile's faults. The driver's rounds retry lost control
	// messages, so it must complete even on lossy/flapping networks.
	var (
		resizeWG  sync.WaitGroup
		resizeErr error
	)
	if cfg.GrowTo > cfg.Shards {
		resizeWG.Add(1)
		time.AfterFunc(cfg.Duration/2, func() {
			defer resizeWG.Done()
			_, resizeErr = ks.Resize(cfg.GrowTo)
		})
	}

	rep := Run(ks, Config{
		Seed:              cfg.Seed,
		Sessions:          cfg.Sessions,
		Rate:              cfg.Rate,
		Duration:          cfg.Duration,
		ObjectsPerSession: cfg.Objects,
		BeforeDrain:       fnet.Heal,
		DrainTimeout:      30 * time.Second,
	})
	resizeWG.Wait()
	if resizeErr != nil {
		return fmt.Errorf("mid-run resize: %w", resizeErr)
	}
	if cfg.GrowTo > cfg.Shards && ks.NumShards() != cfg.GrowTo {
		return fmt.Errorf("resize left %d shards, want %d", ks.NumShards(), cfg.GrowTo)
	}
	if rep.Unanswered > 0 {
		return fmt.Errorf("liveness: %d of %d operations never answered", rep.Unanswered, rep.Offered)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d operations answered with errors", rep.Errors)
	}
	if err := WaitConverged(ks, 20*time.Second); err != nil {
		return err
	}
	if err := ReadBack(ks, rep, 30*time.Second); err != nil {
		return err
	}
	if err := WaitConverged(ks, 20*time.Second); err != nil {
		return fmt.Errorf("after read-back: %w", err)
	}
	if err := AnsweredInOrder(ks, rep); err != nil {
		return err
	}
	if faults := ks.Faults(); len(faults) > 0 {
		return fmt.Errorf("replica faults under honest chaos: %v", faults)
	}
	st := fnet.Stats()
	switch cfg.Profile {
	case "wan":
		if st.Delayed == 0 {
			return fmt.Errorf("wan profile delayed nothing: %+v", st)
		}
	case "lossy":
		if st.LossDropped == 0 {
			return fmt.Errorf("lossy profile dropped nothing: %+v", st)
		}
	case "flap":
		if st.PartitionDropped == 0 {
			return fmt.Errorf("flapping profile partition-dropped nothing: %+v", st)
		}
	}
	return nil
}

// shrinkCell reduces a failing cell while it keeps failing — no resize,
// lower rate, shorter window, fewer sessions — and returns the smallest
// still-failing configuration with its error.
func shrinkCell(cfg cellConfig, orig error) (cellConfig, error) {
	minCfg, minErr := cfg, orig
	try := func(c cellConfig) bool {
		if err := runCell(c); err != nil {
			minCfg, minErr = c, err
			return true
		}
		return false
	}
	if c := minCfg; c.GrowTo > c.Shards {
		c.GrowTo = 0
		try(c)
	}
	for minCfg.Rate > 50 {
		c := minCfg
		c.Rate /= 2
		if !try(c) {
			break
		}
	}
	if c := minCfg; c.Duration > 200*time.Millisecond {
		c.Duration /= 2
		try(c)
	}
	for minCfg.Sessions > 4 {
		c := minCfg
		c.Sessions /= 2
		if !try(c) {
			break
		}
	}
	return minCfg, minErr
}

// chaosSeeds returns the pinned seed set, overridable for broader sweeps
// via ESDS_CHAOS_SEEDS (comma-separated integers) — the same convention
// as the internal/core chaos matrix and `make loadlab`.
func chaosSeeds(t *testing.T) []int64 {
	env := os.Getenv("ESDS_CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("ESDS_CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// TestLoadLabHostileMatrix is the full-stack chaos matrix: open-loop load
// × the four network profiles × pinned seeds, over a batched, pruning,
// snapshotting keyspace that resizes mid-run. Every cell must keep the
// paper's promises — convergence, exact read-back, zero answered-then-
// lost — no matter what the network did. Failures shrink to a minimal
// reproduction before reporting.
func TestLoadLabHostileMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("load lab matrix is wall-clock heavy; run via make loadlab")
	}
	for _, profile := range []string{"clean", "wan", "lossy", "flap"} {
		for _, seed := range chaosSeeds(t) {
			cfg := cellConfig{
				Seed:     seed,
				Profile:  profile,
				Shards:   2,
				GrowTo:   3,
				Replicas: 3,
				Sessions: 32,
				Rate:     300,
				Duration: 600 * time.Millisecond,
				Objects:  2,
			}
			t.Run(fmt.Sprintf("%s/seed=%d", profile, seed), func(t *testing.T) {
				if err := runCell(cfg); err != nil {
					minCfg, minErr := shrinkCell(cfg, err)
					t.Fatalf("cell {%v} failed: %v\nminimal failing reproduction: {%v}: %v",
						cfg, err, minCfg, minErr)
				}
			})
		}
	}
}

// TestLoadLabGeneratorBasics pins the generator's accounting on a tiny
// clean-profile run (fast enough for tier-1): offered = answered after a
// drain, the histogram holds one sample per answered op, and the audit
// maps agree with the read-back.
func TestLoadLabGeneratorBasics(t *testing.T) {
	inner := transport.NewLiveNet()
	fnet := transport.NewFaultNet(inner, transport.FaultNetConfig{Seed: 1})
	ks := core.NewKeyspace(core.KeyspaceConfig{
		Shards:   2,
		Replicas: 3,
		DataType: dtype.Counter{},
		Network:  fnet,
		Options:  core.Options{Memoize: true, Prune: true, Snapshot: true, BatchSize: 8},
	})
	defer func() {
		ks.Close()
		fnet.Close()
		inner.Close()
	}()
	ks.StartLiveGossip(2 * time.Millisecond)
	ks.StartLiveRetransmit(25 * time.Millisecond)
	ks.StartLiveBatchFlush(time.Millisecond)

	rep := Run(ks, Config{
		Seed:              7,
		Sessions:          8,
		Rate:              400,
		Duration:          250 * time.Millisecond,
		ObjectsPerSession: 2,
	})
	if rep.Offered == 0 {
		t.Fatal("open-loop generator offered no operations")
	}
	if rep.Unanswered != 0 || rep.Errors != 0 {
		t.Fatalf("clean run left unanswered=%d errors=%d of %d", rep.Unanswered, rep.Errors, rep.Offered)
	}
	if got := int(rep.Lat.Count()); got != rep.Answered {
		t.Fatalf("histogram has %d samples, answered %d", got, rep.Answered)
	}
	if len(rep.AnsweredIDs) != rep.Answered {
		t.Fatalf("answered id list has %d entries, answered %d", len(rep.AnsweredIDs), rep.Answered)
	}
	var adds int64
	for _, a := range rep.Objects {
		adds += a.Sum
		if len(a.AddIDs) != int(a.Sum) {
			t.Fatalf("audit ids (%d) disagree with sum (%d)", len(a.AddIDs), a.Sum)
		}
	}
	if adds == 0 || adds > int64(rep.Answered) {
		t.Fatalf("audited adds = %d of %d answered", adds, rep.Answered)
	}
	if err := WaitConverged(ks, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ReadBack(ks, rep, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := WaitConverged(ks, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := AnsweredInOrder(ks, rep); err != nil {
		t.Fatal(err)
	}
}
