package loadlab

import (
	"strings"
	"time"

	"esds/internal/core"
	"esds/internal/label"
	"esds/internal/transport"
)

// Profile is a named network personality for the load lab: steady-state
// per-link faults plus an optional scripted timeline, realized as a
// transport.FaultNet around the real transport. The four standard
// profiles (DESIGN.md §11):
//
//	clean  — perfect loopback; the baseline the p99 gate pins.
//	wan    — wide-area latency and jitter, light loss and reorder;
//	         replica↔replica links are slower than client↔replica links
//	         (the paper's d_g > d_f).
//	lossy  — 30% loss on every link with moderate latency; liveness
//	         rides entirely on retransmission and full gossip.
//	flap   — a repeating asymmetric partition: each shard's replica 0
//	         periodically stops RECEIVING from its peers (it can still
//	         send, and clients still reach it) for a window, then heals.
type Profile struct {
	Name     string
	Faults   func(from, to transport.NodeID) transport.LinkFaults
	Timeline []transport.Phase
	Repeat   bool
}

// NetConfig assembles the FaultNet configuration for this profile.
func (p Profile) NetConfig(seed int64) transport.FaultNetConfig {
	return transport.FaultNetConfig{
		Seed:     seed,
		Faults:   p.Faults,
		Timeline: p.Timeline,
		Repeat:   p.Repeat,
	}
}

// isReplicaNode matches both unsharded ("replica:0") and sharded
// ("s2/replica:0") replica names.
func isReplicaNode(id transport.NodeID) bool {
	return strings.Contains(string(id), "replica:")
}

// Clean is the perfect network: FaultNet passes everything through
// immediately. Running it through the wrapper anyway keeps the measured
// code path identical across profiles.
func Clean() Profile {
	return Profile{Name: "clean"}
}

// WAN emulates wide-area links: gossip links ~10–25ms one way, client
// links ~4–12ms, 1%/0.5% loss, a little reordering.
func WAN() Profile {
	return Profile{
		Name: "wan",
		Faults: func(from, to transport.NodeID) transport.LinkFaults {
			if isReplicaNode(from) && isReplicaNode(to) {
				return transport.LinkFaults{
					Base: 10 * time.Millisecond, Jitter: 15 * time.Millisecond,
					Loss: 0.01, Reorder: 0.05,
				}
			}
			return transport.LinkFaults{
				Base: 4 * time.Millisecond, Jitter: 8 * time.Millisecond,
				Loss: 0.005, Reorder: 0.02,
			}
		},
	}
}

// Lossy drops 30% of every link's messages with moderate latency — the
// regime where the retransmission ticker and loss-tolerant full gossip
// carry the protocol.
func Lossy() Profile {
	return Profile{
		Name: "lossy",
		Faults: func(transport.NodeID, transport.NodeID) transport.LinkFaults {
			return transport.LinkFaults{
				Base: time.Millisecond, Jitter: 3 * time.Millisecond,
				Loss: 0.30, Reorder: 0.05,
			}
		},
	}
}

// Flapping builds the repeating asymmetric-partition profile for a
// keyspace of up to maxShards shards with replicas per shard: for window
// after window, every shard's replica 0 stops receiving from its peer
// replicas (peers→r0 blocked; r0→peers and all client links flow), then
// the partition lifts. Shards beyond maxShards (from a larger resize)
// simply see no blocks.
func Flapping(maxShards, replicas int) Profile {
	var from, to []transport.NodeID
	for s := 0; s < maxShards; s++ {
		to = append(to, core.ReplicaNodeIn(s, 0))
		for r := 1; r < replicas; r++ {
			from = append(from, core.ReplicaNodeIn(s, label.ReplicaID(r)))
		}
	}
	block := []transport.Block{{From: from, To: to}}
	return Profile{
		Name: "flap",
		Faults: func(transport.NodeID, transport.NodeID) transport.LinkFaults {
			return transport.LinkFaults{Base: time.Millisecond, Jitter: 2 * time.Millisecond}
		},
		Timeline: []transport.Phase{
			{Dur: 150 * time.Millisecond, Block: block},
			{Dur: 150 * time.Millisecond},
		},
		Repeat: true,
	}
}

// Profiles returns the standard profile set for a keyspace that may grow
// to maxShards shards of the given replica count.
func Profiles(maxShards, replicas int) []Profile {
	return []Profile{Clean(), WAN(), Lossy(), Flapping(maxShards, replicas)}
}

// ProfileByName finds a standard profile.
func ProfileByName(name string, maxShards, replicas int) (Profile, bool) {
	for _, p := range Profiles(maxShards, replicas) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
