// Package loadlab is the hostile-network load laboratory (DESIGN.md §11):
// an OPEN-LOOP traffic generator driving a live keyspace — many client
// sessions firing at a configured arrival rate regardless of completion —
// with per-operation latency recorded into mergeable histograms, plus the
// audit helpers (strict read-back, answered-ops-in-order) the chaos cells
// and the E15 experiment assert with.
//
// Open vs closed loop: a closed-loop driver (E10–E14) waits for responses
// before issuing more work, so when the system slows down the offered
// load politely slows with it and queueing collapse is invisible. The
// open-loop generator models independent users: arrivals follow a seeded
// Poisson process whose rate does not care how the system is doing, so
// saturation shows up where it belongs — in the latency tail.
package loadlab

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"esds/internal/core"
	"esds/internal/dtype"
	"esds/internal/ops"
	"esds/internal/stats"
)

// Config parameterizes one load-lab run. All randomness (arrival gaps,
// session/object/op choices) derives from Seed; wall-clock timing does
// not, so runs are reproducible in workload but not in interleaving.
type Config struct {
	// Seed roots the arrival process and workload choices.
	Seed int64
	// Sessions is the number of simulated client sessions. Each session is
	// a distinct KeyspaceClient owning a private slice of the namespace.
	Sessions int
	// Rate is the total offered arrival rate in operations per second,
	// spread across all sessions by a Poisson process.
	Rate float64
	// Duration is the dispatch window; arrivals stop when it elapses but
	// in-flight operations keep running (open loop: no barrier).
	Duration time.Duration
	// ObjectsPerSession is each session's private object count. Objects are
	// session-owned so the strict read-back can constrain on the owning
	// client's own operation ids (resize-translatable prev references).
	ObjectsPerSession int
	// AddFrac is the fraction of operations that are CtrAdd{1}; the rest
	// are non-strict reads. Defaults to 0.9.
	AddFrac float64
	// BeforeDrain, if non-nil, runs after the dispatch window closes and
	// before Run waits for in-flight operations — where the chaos cells
	// heal their FaultNet so the drain measures liveness, not luck.
	BeforeDrain func()
	// DrainTimeout bounds the wait for in-flight operations after the
	// window (default 30s). Operations still unanswered at the timeout are
	// counted in Report.Unanswered — a liveness failure for the caller to
	// judge.
	DrainTimeout time.Duration
}

// ObjectAudit is the generator's ground truth for one object: which
// session owns it, which CtrAdds were acknowledged, and their sum. The
// strict read-back must reproduce Sum exactly — less means an
// acknowledged operation was lost, more means one was applied twice.
type ObjectAudit struct {
	Session string
	AddIDs  []ops.ID
	Sum     int64
}

// Report is the outcome of one run.
type Report struct {
	Offered    int // operations dispatched during the window
	Answered   int // operations acknowledged (successfully)
	Errors     int // operations answered with an error
	Unanswered int // operations still pending at the drain timeout
	Elapsed    time.Duration
	// Lat holds per-op latency in nanoseconds, submission to callback,
	// merged from the per-session histograms. Errored ops are excluded.
	Lat *stats.Hist
	// Objects maps every object that received acknowledged adds to its
	// audit record.
	Objects map[string]ObjectAudit
	// AnsweredIDs lists every successfully answered operation id — each
	// must appear in some shard's converged order (AnsweredInOrder).
	AnsweredIDs []ops.ID
}

// session is one simulated client.
type session struct {
	name    string
	client  *core.KeyspaceClient
	objects []string

	mu       sync.Mutex
	hist     *stats.Hist
	answered []ops.ID
	addIDs   map[string][]ops.ID
	addSum   map[string]int64
	errors   int
}

// Run drives the open-loop workload against ks and returns the audit
// report. ks must already be running (gossip, retransmission, and batch
// flush tickers started); Run adds only front-end traffic.
func Run(ks *core.Keyspace, cfg Config) *Report {
	if cfg.Sessions < 1 || cfg.Rate <= 0 || cfg.Duration <= 0 || cfg.ObjectsPerSession < 1 {
		panic(fmt.Sprintf("loadlab: invalid config %+v", cfg))
	}
	addFrac := cfg.AddFrac
	if addFrac == 0 {
		addFrac = 0.9
	}
	drainTimeout := cfg.DrainTimeout
	if drainTimeout == 0 {
		drainTimeout = 30 * time.Second
	}

	sessions := make([]*session, cfg.Sessions)
	for i := range sessions {
		s := &session{
			name:   fmt.Sprintf("sess-%04d", i),
			hist:   stats.NewHist(),
			addIDs: make(map[string][]ops.ID),
			addSum: make(map[string]int64),
		}
		s.client = ks.Client(s.name)
		for j := 0; j < cfg.ObjectsPerSession; j++ {
			s.objects = append(s.objects, fmt.Sprintf("%s/o%d", s.name, j))
		}
		sessions[i] = s
	}

	// Open-loop dispatch: exponential inter-arrival gaps laid on an
	// ABSOLUTE schedule from the start instant. If dispatch falls behind
	// (scheduler hiccup, slow Submit), later arrivals fire immediately
	// rather than stretching the window — the offered rate is the
	// contract, not the achieved one.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var pending sync.WaitGroup
	offered := 0
	start := time.Now()
	var cum time.Duration
	for {
		cum += time.Duration(rng.ExpFloat64() * float64(time.Second) / cfg.Rate)
		if cum >= cfg.Duration {
			break
		}
		if d := time.Until(start.Add(cum)); d > 0 {
			time.Sleep(d)
		}
		s := sessions[rng.Intn(len(sessions))]
		obj := s.objects[rng.Intn(len(s.objects))]
		isAdd := rng.Float64() < addFrac
		var op dtype.Operator = dtype.CtrRead{}
		if isAdd {
			op = dtype.CtrAdd{N: 1}
		}
		offered++
		pending.Add(1)
		t0 := time.Now()
		s.client.Submit(ks.WrapOp(obj, op), nil, false, func(r core.Response) {
			lat := time.Since(t0).Nanoseconds()
			s.mu.Lock()
			if r.Err != nil {
				s.errors++
			} else {
				s.hist.Record(lat)
				s.answered = append(s.answered, r.ID)
				if isAdd {
					s.addIDs[obj] = append(s.addIDs[obj], r.ID)
					s.addSum[obj]++
				}
			}
			s.mu.Unlock()
			pending.Done()
		})
	}
	elapsed := time.Since(start)

	if cfg.BeforeDrain != nil {
		cfg.BeforeDrain()
	}
	drained := make(chan struct{})
	go func() {
		pending.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(drainTimeout):
	}

	rep := &Report{
		Offered: offered,
		Elapsed: elapsed,
		Lat:     stats.NewHist(),
		Objects: make(map[string]ObjectAudit),
	}
	for _, s := range sessions {
		s.mu.Lock()
		rep.Lat.Merge(s.hist)
		rep.Answered += len(s.answered)
		rep.Errors += s.errors
		rep.AnsweredIDs = append(rep.AnsweredIDs, s.answered...)
		for obj, ids := range s.addIDs {
			rep.Objects[obj] = ObjectAudit{
				Session: s.name,
				AddIDs:  append([]ops.ID(nil), ids...),
				Sum:     s.addSum[obj],
			}
		}
		s.mu.Unlock()
	}
	rep.Unanswered = rep.Offered - rep.Answered - rep.Errors
	return rep
}

// ReadBack strict-reads every audited object, constrained after ALL of
// its acknowledged adds, and demands the sum match exactly. Reads go
// through each object's owning session client so prev references
// translate across resizes. Returns the first violation.
func ReadBack(ks *core.Keyspace, rep *Report, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	type item struct {
		obj   string
		audit ObjectAudit
	}
	work := make(chan item, len(rep.Objects))
	for obj, a := range rep.Objects {
		work <- item{obj, a}
	}
	close(work)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				client := ks.Client(it.audit.Session)
				_, v, err := client.SubmitWaitCtx(ctx, ks.WrapOp(it.obj, dtype.CtrRead{}), it.audit.AddIDs, true)
				var e error
				if err != nil {
					e = fmt.Errorf("strict read-back of %s: %w", it.obj, err)
				} else if got, _ := v.(int64); got != it.audit.Sum {
					e = fmt.Errorf("object %s reads back %v, want exactly %d acknowledged adds (lost or double-applied)",
						it.obj, v, it.audit.Sum)
				}
				if e != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = e
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// AnsweredInOrder checks zero answered-then-lost: every successfully
// answered operation id must appear in some shard's converged order.
// (The union over shards is the right universe: a resize moves an
// object's NEW operations to the destination shard's order while
// source-era history stays put.) Call at quiescence, after WaitConverged.
func AnsweredInOrder(ks *core.Keyspace, rep *Report) error {
	inOrder := make(map[ops.ID]struct{})
	for s := 0; s < ks.NumShards(); s++ {
		conv := ks.Shard(s).CheckConvergence()
		if !conv.Converged {
			return fmt.Errorf("shard %d not converged: %s", s, conv.Reason)
		}
		for _, id := range conv.Order {
			inOrder[id] = struct{}{}
		}
	}
	for _, id := range rep.AnsweredIDs {
		if _, ok := inOrder[id]; !ok {
			return fmt.Errorf("answered op %v missing from every shard's converged order (answered-then-lost)", id)
		}
	}
	return nil
}

// WaitConverged polls until every shard converges to one order, or the
// timeout expires (returning the last non-convergence reason). Gossip
// keeps running after a drain, so convergence is eventual, not instant.
func WaitConverged(ks *core.Keyspace, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		conv := ks.CheckConvergence()
		if conv.Converged {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("convergence timeout: %s", conv.Reason)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
