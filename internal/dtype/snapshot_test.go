package dtype

import (
	"fmt"
	"math/rand"
	"testing"
)

// snapshotCases enumerates every registered serial type plus its keyed
// lift — the registry-driven shape keeps a future data type from shipping
// without snapshot coverage (adding it to builtin makes these tests cover
// it, or fail loudly if it lacks a Snapshotter).
func snapshotCases(t *testing.T) []DataType {
	t.Helper()
	var out []DataType
	for _, name := range Names() {
		dt, ok := ByName(name)
		if !ok {
			t.Fatalf("registry lists %q but ByName fails", name)
		}
		out = append(out, dt, NewKeyed(dt))
	}
	return out
}

func TestEveryRegisteredTypeSupportsSnapshots(t *testing.T) {
	for _, dt := range snapshotCases(t) {
		if !CanSnapshot(dt) {
			t.Errorf("%s: no snapshot encoding — recovery with pruning cannot serve this type", dt.Name())
		}
	}
}

// TestSnapshotterRoundTripProperty drives random operation sequences
// through every registered type and checks, at every prefix cut, that the
// encoded-and-decoded state is behaviourally identical to the original:
// identical bytes on re-encoding, and identical (state, value) results for
// the remaining suffix applied to both.
func TestSnapshotterRoundTripProperty(t *testing.T) {
	const (
		runs    = 40
		histLen = 25
	)
	for _, dt := range snapshotCases(t) {
		dt := dt
		t.Run(dt.Name(), func(t *testing.T) {
			sn, ok := dt.(Snapshotter)
			if !ok {
				t.Fatalf("%s does not implement Snapshotter", dt.Name())
			}
			for run := 0; run < runs; run++ {
				rng := rand.New(rand.NewSource(int64(run)))
				ops := make([]Operator, histLen)
				for i := range ops {
					ops[i] = RandomOp(rng, dt)
				}
				st := dt.Initial()
				for cut := 0; cut <= len(ops); cut++ {
					enc, err := sn.EncodeState(st)
					if err != nil {
						t.Fatalf("run %d cut %d: encode: %v", run, cut, err)
					}
					dec, err := sn.DecodeState(enc)
					if err != nil {
						t.Fatalf("run %d cut %d: decode: %v", run, cut, err)
					}
					enc2, err := sn.EncodeState(dec)
					if err != nil {
						t.Fatalf("run %d cut %d: re-encode: %v", run, cut, err)
					}
					if string(enc2) != string(enc) {
						t.Fatalf("run %d cut %d: encoding not canonical: % x vs % x", run, cut, enc2, enc)
					}
					// Behavioural equality: the suffix applied to both states
					// yields identical values and final states.
					a, b := st, dec
					for i := cut; i < len(ops); i++ {
						var va, vb Value
						a, va = dt.Apply(a, ops[i])
						b, vb = dt.Apply(b, ops[i])
						if fmt.Sprint(va) != fmt.Sprint(vb) {
							t.Fatalf("run %d cut %d op %d (%v): value %v via snapshot, %v direct",
								run, cut, i, ops[i], vb, va)
						}
					}
					if fmt.Sprint(a) != fmt.Sprint(b) {
						t.Fatalf("run %d cut %d: final states diverge:\n direct:   %v\n snapshot: %v", run, cut, a, b)
					}
					if cut < len(ops) {
						st, _ = dt.Apply(st, ops[cut])
					}
				}
			}
		})
	}
}

// TestSnapshotterRejectsGarbage: decoders must fail on non-canonical
// input rather than construct ill-formed states.
func TestSnapshotterRejectsGarbage(t *testing.T) {
	cases := []struct {
		dt   DataType
		data []byte
	}{
		{Counter{}, []byte("short")},
		{Set{}, []byte("b\x00a")},                                 // unsorted members
		{Set{}, []byte("e1\x00e1")},                               // duplicate members
		{Bank{}, []byte("nosign")},                                // entry without '='
		{Bank{}, []byte("a=0")},                                   // zero balance is non-canonical
		{Bank{}, []byte("b=1\x00a=2")},                            // unsorted accounts
		{Directory{}, []byte("plain")},                            // no \x01 separator
		{Directory{}, []byte("n\x01kv")},                          // attribute without '='
		{Directory{}, []byte("b\x01\x00a\x01")},                   // unsorted names
		{NewKeyed(Counter{}), []byte{0xff}},                       // truncated varint payload
		{NewKeyed(Counter{}), append([]byte{1, 'k'}, 3, 0, 0, 0)}, // truncated inner state
	}
	for _, tc := range cases {
		sn := tc.dt.(Snapshotter)
		if st, err := sn.DecodeState(tc.data); err == nil {
			t.Errorf("%s: decoded garbage %q as %v", tc.dt.Name(), tc.data, st)
		}
	}
}

// TestKeyedSnapshotRequiresSnapshottableInner: the keyed lift reports and
// fails cleanly when its inner type has no encoding.
func TestKeyedSnapshotRequiresSnapshottableInner(t *testing.T) {
	k := NewKeyed(opaqueType{})
	if CanSnapshot(k) {
		t.Fatal("CanSnapshot true for keyed lift of a non-snapshottable type")
	}
	if _, err := k.EncodeState(KeyedState{}); err == nil {
		t.Fatal("EncodeState succeeded without an inner Snapshotter")
	}
	if _, err := k.DecodeState(nil); err == nil {
		t.Fatal("DecodeState succeeded without an inner Snapshotter")
	}
}

// opaqueType is a DataType without a Snapshotter.
type opaqueType struct{}

func (opaqueType) Name() string                             { return "opaque" }
func (opaqueType) Initial() State                           { return 0 }
func (opaqueType) Apply(s State, _ Operator) (State, Value) { return s, "ok" }
