package dtype

import "testing"

func TestKeyedApplyIsolatesObjects(t *testing.T) {
	k := NewKeyed(Counter{})
	s := k.Initial()
	var v Value
	s, v = k.Apply(s, KeyedOp{Key: "a", Op: CtrAdd{N: 5}})
	if v != "ok" {
		t.Fatalf("add value = %v", v)
	}
	s, _ = k.Apply(s, KeyedOp{Key: "b", Op: CtrAdd{N: 7}})
	_, va := k.Apply(s, KeyedOp{Key: "a", Op: CtrRead{}})
	_, vb := k.Apply(s, KeyedOp{Key: "b", Op: CtrRead{}})
	_, vc := k.Apply(s, KeyedOp{Key: "c", Op: CtrRead{}})
	if va != int64(5) || vb != int64(7) || vc != int64(0) {
		t.Fatalf("reads = %v/%v/%v, want 5/7/0", va, vb, vc)
	}
}

func TestKeyedApplyDoesNotMutateInput(t *testing.T) {
	k := NewKeyed(Counter{})
	s0 := k.Initial()
	s1, _ := k.Apply(s0, KeyedOp{Key: "a", Op: CtrAdd{N: 1}})
	s2, _ := k.Apply(s1, KeyedOp{Key: "a", Op: CtrAdd{N: 1}})
	// Snapshots must be stable: the replica memoizes intermediate states.
	if _, v := k.Apply(s1, KeyedOp{Key: "a", Op: CtrRead{}}); v != int64(1) {
		t.Fatalf("earlier state mutated: read = %v, want 1", v)
	}
	if _, v := k.Apply(s2, KeyedOp{Key: "a", Op: CtrRead{}}); v != int64(2) {
		t.Fatalf("later state wrong: read = %v, want 2", v)
	}
	if len(s0.(KeyedState)) != 0 {
		t.Fatal("initial state mutated")
	}
}

func TestKeyedCommuteAndOblivious(t *testing.T) {
	k := NewKeyed(Counter{})
	onA := func(op Operator) Operator { return KeyedOp{Key: "a", Op: op} }
	onB := func(op Operator) Operator { return KeyedOp{Key: "b", Op: op} }
	// Distinct objects: always independent.
	if !k.Commute(onA(CtrAdd{N: 1}), onB(CtrDouble{})) || !k.Oblivious(onA(CtrRead{}), onB(CtrAdd{N: 1})) {
		t.Fatal("cross-object operators must be independent")
	}
	// Same object: delegate to the inner type (adds commute, add/double do
	// not; a read is not oblivious to an add).
	if !k.Commute(onA(CtrAdd{N: 1}), onA(CtrAdd{N: 2})) {
		t.Fatal("same-object adds must commute")
	}
	if k.Commute(onA(CtrAdd{N: 1}), onA(CtrDouble{})) {
		t.Fatal("add/double must not commute")
	}
	if k.Oblivious(onA(CtrRead{}), onA(CtrAdd{N: 1})) {
		t.Fatal("read must not be oblivious to add on the same object")
	}
	// Non-keyed operators: conservative false.
	if k.Commute(CtrAdd{N: 1}, onA(CtrAdd{N: 1})) {
		t.Fatal("malformed operator pair must not commute")
	}
}

func TestKeyedConstructorGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("nil inner", func() { NewKeyed(nil) })
	mustPanic("nested keyed", func() { NewKeyed(NewKeyed(Counter{})) })
	k := NewKeyed(Counter{})
	mustPanic("non-keyed op", func() { k.Apply(k.Initial(), CtrAdd{N: 1}) })
	mustPanic("wrong state type", func() { k.Apply(int64(0), KeyedOp{Key: "a", Op: CtrAdd{N: 1}}) })
	if k.Name() != "keyed:counter" {
		t.Fatalf("name = %q", k.Name())
	}
}
