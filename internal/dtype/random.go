package dtype

import (
	"fmt"
	"math/rand"
)

// RandomOp draws a random operator valid for dt, over a small closed value
// domain so random sequences collide and interact. It is the workload
// generator behind the snapshot round-trip property tests and the
// esds-check equivalence sweeps; it panics on a data type it does not know
// (checkers should fail loudly on an unhandled type, not silently skip it).
func RandomOp(rng *rand.Rand, dt DataType) Operator {
	switch d := dt.(type) {
	case Counter:
		switch rng.Intn(3) {
		case 0:
			return CtrAdd{N: int64(rng.Intn(7)) - 3}
		case 1:
			return CtrDouble{}
		default:
			return CtrRead{}
		}
	case Register:
		if rng.Intn(2) == 0 {
			return RegWrite{Val: fmt.Sprintf("v%d", rng.Intn(4))}
		}
		return RegRead{}
	case Set:
		elem := fmt.Sprintf("e%d", rng.Intn(4))
		switch rng.Intn(4) {
		case 0:
			return SetAdd{Elem: elem}
		case 1:
			return SetRemove{Elem: elem}
		case 2:
			return SetContains{Elem: elem}
		default:
			return SetSize{}
		}
	case Log:
		switch rng.Intn(3) {
		case 0:
			return LogAppend{Entry: fmt.Sprintf("x%d", rng.Intn(8))}
		case 1:
			return LogRead{}
		default:
			return LogLen{}
		}
	case Bank:
		acct := fmt.Sprintf("a%d", rng.Intn(3))
		switch rng.Intn(3) {
		case 0:
			return BankDeposit{Account: acct, Amount: int64(rng.Intn(20) + 1)}
		case 1:
			return BankWithdraw{Account: acct, Amount: int64(rng.Intn(20) + 1)}
		default:
			return BankBalance{Account: acct}
		}
	case Directory:
		name := fmt.Sprintf("n%d", rng.Intn(3))
		switch rng.Intn(6) {
		case 0:
			return DirBind{Name: name}
		case 1:
			return DirUnbind{Name: name}
		case 2:
			return DirSetAttr{Name: name, Key: fmt.Sprintf("k%d", rng.Intn(2)), Val: fmt.Sprintf("v%d", rng.Intn(3))}
		case 3:
			return DirGetAttr{Name: name, Key: fmt.Sprintf("k%d", rng.Intn(2))}
		case 4:
			return DirLookup{Name: name}
		default:
			return DirList{}
		}
	case Keyed:
		return KeyedOp{Key: fmt.Sprintf("obj%d", rng.Intn(3)), Op: RandomOp(rng, d.Inner)}
	default:
		panic(fmt.Sprintf("dtype: RandomOp has no generator for %T", dt))
	}
}
