// Package dtype implements serial data types in the sense of §2.2 of
// Fekete et al.: a set of object states Σ with a distinguished initial state,
// a set of operators O, a set of reportable values V, and a transition
// function τ : Σ × O → Σ × V.
//
// The ESDS service makes no assumption about object semantics, so states,
// operators, and values are dynamically typed (any). Concrete data types
// (register, counter, set, directory, log, bank) provide typed operator
// constructors. Data types may additionally implement Commuter and
// ObliviousChecker to expose the commutativity/independence structure used
// by the §10.3 optimization.
package dtype

import "fmt"

// State is an object state σ ∈ Σ. States must be treated as immutable:
// Apply must return a fresh state rather than mutating its argument, so a
// replica can keep snapshots (memoized prefix states) safely.
type State = any

// Operator is a data type operator op ∈ O.
type Operator = any

// Value is a reportable value v ∈ V.
type Value = any

// DataType is a serial data type (Σ, σ₀, V, O, τ).
type DataType interface {
	// Name identifies the data type (for diagnostics and table output).
	Name() string
	// Initial returns the initial state σ₀.
	Initial() State
	// Apply is the transition function τ: it returns the post-state
	// τ(σ, op).s and the reportable value τ(σ, op).v. Apply must not mutate σ.
	Apply(s State, op Operator) (State, Value)
}

// Commuter is an optional extension: data types that can decide whether two
// operators commute (§10.3): op₁ and op₂ commute iff
// τ⁺(σ,(op₁,op₂)).s = τ⁺(σ,(op₂,op₁)).s for all σ.
type Commuter interface {
	Commute(op1, op2 Operator) bool
}

// ObliviousChecker is an optional extension: Oblivious(op1, op2) reports
// whether op₁ is oblivious to op₂ (§10.3): τ⁺(σ,(op₂,op₁)).v = τ(σ,op₁).v
// for all σ, i.e. op₁'s return value is unaffected by op₂ preceding it.
type ObliviousChecker interface {
	Oblivious(op1, op2 Operator) bool
}

// ApplyAll is τ⁺ (§2.2): it applies ops in sequence from s and returns the
// final state. ApplyAll of an empty sequence returns s.
func ApplyAll(dt DataType, s State, ops []Operator) State {
	for _, op := range ops {
		s, _ = dt.Apply(s, op)
	}
	return s
}

// ApplyAllValues applies ops in sequence from s, returning the final state
// and the value produced by each operator.
func ApplyAllValues(dt DataType, s State, ops []Operator) (State, []Value) {
	vals := make([]Value, 0, len(ops))
	for _, op := range ops {
		var v Value
		s, v = dt.Apply(s, op)
		vals = append(vals, v)
	}
	return s, vals
}

// Independent reports whether op1 and op2 are independent (§10.3): they
// commute and each is oblivious to the other. dt must implement both
// Commuter and ObliviousChecker; otherwise Independent returns false
// (the conservative answer: dependence forces ordering, never breaks
// correctness).
func Independent(dt DataType, op1, op2 Operator) bool {
	c, ok := dt.(Commuter)
	if !ok {
		return false
	}
	o, ok := dt.(ObliviousChecker)
	if !ok {
		return false
	}
	return c.Commute(op1, op2) && o.Oblivious(op1, op2) && o.Oblivious(op2, op1)
}

// CheckCommute verifies by direct application that op1 and op2 commute on
// every state in states. It is a test oracle for Commuter implementations.
func CheckCommute(dt DataType, op1, op2 Operator, states []State) bool {
	for _, s := range states {
		a := ApplyAll(dt, s, []Operator{op1, op2})
		b := ApplyAll(dt, s, []Operator{op2, op1})
		if !stateEqual(a, b) {
			return false
		}
	}
	return true
}

// CheckOblivious verifies by direct application that op1 is oblivious to
// op2 on every state in states.
func CheckOblivious(dt DataType, op1, op2 Operator, states []State) bool {
	for _, s := range states {
		_, direct := dt.Apply(s, op1)
		mid, _ := dt.Apply(s, op2)
		_, after := dt.Apply(mid, op1)
		if fmt.Sprint(direct) != fmt.Sprint(after) {
			return false
		}
	}
	return true
}

// stateEqual compares states structurally via their printed form; built-in
// data types in this package have canonical String representations, making
// this an exact comparison for them.
func stateEqual(a, b State) bool {
	return fmt.Sprint(a) == fmt.Sprint(b)
}
