package dtype

import (
	"fmt"
	"sort"
	"strings"
)

// Directory is a name service data type in the style of §11.2: a mapping
// from names to attribute sets. It is the paper's motivating application —
// lookups dominate, updates tolerate lazy propagation, and attribute
// initialization depends (via prev sets) on name creation.
type Directory struct{}

var (
	_ DataType         = Directory{}
	_ Commuter         = Directory{}
	_ ObliviousChecker = Directory{}
)

// DirBind creates the name object (with no attributes). Binding an existing
// name is a no-op. Value: "ok".
type DirBind struct{ Name string }

// DirUnbind removes the name and its attributes. Value: "ok".
type DirUnbind struct{ Name string }

// DirSetAttr sets attribute Key of Name to Val. Setting an attribute of an
// unbound name reports "no-such-name" and leaves the state unchanged —
// which is why clients order DirSetAttr after DirBind via prev sets.
type DirSetAttr struct{ Name, Key, Val string }

// DirGetAttr reads attribute Key of Name (value: the attribute value, or
// "" if the name or key is absent).
type DirGetAttr struct{ Name, Key string }

// DirLookup reports whether Name is bound (value: bool).
type DirLookup struct{ Name string }

// DirList returns the sorted list of bound names (value: []string).
type DirList struct{}

func (o DirBind) String() string    { return fmt.Sprintf("bind(%s)", o.Name) }
func (o DirUnbind) String() string  { return fmt.Sprintf("unbind(%s)", o.Name) }
func (o DirSetAttr) String() string { return fmt.Sprintf("setattr(%s.%s=%s)", o.Name, o.Key, o.Val) }
func (o DirGetAttr) String() string { return fmt.Sprintf("getattr(%s.%s)", o.Name, o.Key) }
func (o DirLookup) String() string  { return fmt.Sprintf("lookup(%s)", o.Name) }
func (DirList) String() string      { return "list" }

// DirState is the immutable canonical state of a Directory.
type DirState struct {
	// enc is a canonical encoding: "name\x01k=v\x02k=v..." entries joined by
	// "\x00", names and keys sorted. Canonical encoding makes states
	// comparable with == and printable deterministically.
	enc string
}

func (s DirState) String() string { return "dir[" + strings.ReplaceAll(s.enc, "\x00", " ") + "]" }

type dirEntry struct {
	name  string
	attrs map[string]string
}

func (s DirState) decode() []dirEntry {
	if s.enc == "" {
		return nil
	}
	parts := strings.Split(s.enc, "\x00")
	out := make([]dirEntry, 0, len(parts))
	for _, p := range parts {
		fields := strings.Split(p, "\x01")
		e := dirEntry{name: fields[0], attrs: make(map[string]string)}
		if len(fields) > 1 && fields[1] != "" {
			for _, kv := range strings.Split(fields[1], "\x02") {
				i := strings.IndexByte(kv, '=')
				e.attrs[kv[:i]] = kv[i+1:]
			}
		}
		out = append(out, e)
	}
	return out
}

func encodeDir(entries []dirEntry) DirState {
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	parts := make([]string, 0, len(entries))
	for _, e := range entries {
		keys := make([]string, 0, len(e.attrs))
		for k := range e.attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kvs := make([]string, 0, len(keys))
		for _, k := range keys {
			kvs = append(kvs, k+"="+e.attrs[k])
		}
		parts = append(parts, e.name+"\x01"+strings.Join(kvs, "\x02"))
	}
	return DirState{enc: strings.Join(parts, "\x00")}
}

// Bound reports whether name is bound in the state.
func (s DirState) Bound(name string) bool {
	for _, e := range s.decode() {
		if e.name == name {
			return true
		}
	}
	return false
}

// Attr returns the value of an attribute, or "" if absent.
func (s DirState) Attr(name, key string) string {
	for _, e := range s.decode() {
		if e.name == name {
			return e.attrs[key]
		}
	}
	return ""
}

// Names returns the sorted bound names.
func (s DirState) Names() []string {
	es := s.decode()
	out := make([]string, 0, len(es))
	for _, e := range es {
		out = append(out, e.name)
	}
	return out
}

// Name implements DataType.
func (Directory) Name() string { return "directory" }

// Initial implements DataType.
func (Directory) Initial() State { return DirState{} }

// Apply implements DataType.
func (Directory) Apply(s State, op Operator) (State, Value) {
	cur, ok := s.(DirState)
	if !ok {
		panic(fmt.Sprintf("dtype: directory state has type %T, want DirState", s))
	}
	entries := cur.decode()
	switch o := op.(type) {
	case DirBind:
		for _, e := range entries {
			if e.name == o.Name {
				return cur, "ok"
			}
		}
		entries = append(entries, dirEntry{name: o.Name, attrs: map[string]string{}})
		return encodeDir(entries), "ok"
	case DirUnbind:
		out := entries[:0:0]
		for _, e := range entries {
			if e.name != o.Name {
				out = append(out, e)
			}
		}
		return encodeDir(out), "ok"
	case DirSetAttr:
		for i, e := range entries {
			if e.name == o.Name {
				attrs := make(map[string]string, len(e.attrs)+1)
				for k, v := range e.attrs {
					attrs[k] = v
				}
				attrs[o.Key] = o.Val
				entries[i] = dirEntry{name: e.name, attrs: attrs}
				return encodeDir(entries), "ok"
			}
		}
		return cur, "no-such-name"
	case DirGetAttr:
		return cur, cur.Attr(o.Name, o.Key)
	case DirLookup:
		return cur, cur.Bound(o.Name)
	case DirList:
		return cur, cur.Names()
	default:
		panic(fmt.Sprintf("dtype: directory does not support operator %T", op))
	}
}

// Commute implements Commuter: operations on different names commute;
// queries commute with queries. On the same name, bind/bind and
// setattr/setattr-on-different-keys commute; unbind does not commute with
// any mutator of the same name; setattr does not commute with bind of the
// same name (setattr before bind is lost).
func (Directory) Commute(op1, op2 Operator) bool {
	n1, mut1 := dirMutTarget(op1)
	n2, mut2 := dirMutTarget(op2)
	if !mut1 || !mut2 {
		return true
	}
	if n1 != n2 {
		return true
	}
	switch a := op1.(type) {
	case DirBind:
		_, otherBind := op2.(DirBind)
		return otherBind
	case DirUnbind:
		_, otherUnbind := op2.(DirUnbind)
		return otherUnbind
	case DirSetAttr:
		b, otherSet := op2.(DirSetAttr)
		if !otherSet {
			return false
		}
		return a.Key != b.Key || a.Val == b.Val
	default:
		return false
	}
}

// Oblivious implements ObliviousChecker: a query is not oblivious to
// mutators of the name (or name set) it observes.
func (Directory) Oblivious(op1, op2 Operator) bool {
	n2, mut2 := dirMutTarget(op2)
	if !mut2 {
		return true
	}
	switch q := op1.(type) {
	case DirGetAttr:
		return q.Name != n2
	case DirLookup:
		return q.Name != n2
	case DirList:
		return false
	case DirSetAttr:
		// setattr's value ("ok" vs "no-such-name") depends on whether the
		// name is bound, so it is not oblivious to bind/unbind of its name.
		switch op2.(type) {
		case DirBind, DirUnbind:
			return q.Name != n2
		default:
			return true
		}
	default:
		return true
	}
}

func dirMutTarget(op Operator) (name string, isMutator bool) {
	switch o := op.(type) {
	case DirBind:
		return o.Name, true
	case DirUnbind:
		return o.Name, true
	case DirSetAttr:
		return o.Name, true
	default:
		return "", false
	}
}
