package dtype

import "fmt"

// Counter is an integer counter supporting increment-by-n, doubling, and
// reads. Increment and Double do not commute — this is exactly the §10.3
// example of operations that must be ordered by the client in Commute mode
// (from state 1, inc-then-double yields 4 but double-then-inc yields 3).
type Counter struct{}

var (
	_ DataType         = Counter{}
	_ Commuter         = Counter{}
	_ ObliviousChecker = Counter{}
)

// CtrAdd adds N to the counter; its reportable value is "ok".
type CtrAdd struct{ N int64 }

// CtrDouble doubles the counter; its reportable value is "ok".
type CtrDouble struct{}

// CtrRead returns the current count.
type CtrRead struct{}

func (a CtrAdd) String() string  { return fmt.Sprintf("add(%d)", a.N) }
func (CtrDouble) String() string { return "double" }
func (CtrRead) String() string   { return "read" }

// Name implements DataType.
func (Counter) Name() string { return "counter" }

// Initial implements DataType.
func (Counter) Initial() State { return int64(0) }

// Apply implements DataType.
func (Counter) Apply(s State, op Operator) (State, Value) {
	cur, ok := s.(int64)
	if !ok {
		panic(fmt.Sprintf("dtype: counter state has type %T, want int64", s))
	}
	switch o := op.(type) {
	case CtrAdd:
		return cur + o.N, "ok"
	case CtrDouble:
		return cur * 2, "ok"
	case CtrRead:
		return cur, cur
	default:
		panic(fmt.Sprintf("dtype: counter does not support operator %T", op))
	}
}

// Commute implements Commuter. Adds commute with adds; doubles commute with
// doubles; reads commute with everything; add and double do not commute
// (unless the add is of zero).
func (Counter) Commute(op1, op2 Operator) bool {
	if isCtrRead(op1) || isCtrRead(op2) {
		return true
	}
	a1, add1 := op1.(CtrAdd)
	a2, add2 := op2.(CtrAdd)
	switch {
	case add1 && add2:
		return true
	case add1 && !add2:
		return a1.N == 0
	case !add1 && add2:
		return a2.N == 0
	default: // double, double
		return true
	}
}

// Oblivious implements ObliviousChecker: a read is not oblivious to any
// mutator (except add(0)); mutators report "ok" and are oblivious to
// everything.
func (Counter) Oblivious(op1, op2 Operator) bool {
	if !isCtrRead(op1) {
		return true
	}
	if a, ok := op2.(CtrAdd); ok && a.N == 0 {
		return true
	}
	return isCtrRead(op2)
}

func isCtrRead(op Operator) bool {
	_, ok := op.(CtrRead)
	return ok
}
