package dtype

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Snapshotter is an optional DataType extension: a canonical, portable byte
// encoding of object states. It exists for replica snapshots — the §9.3
// crash-recovery state transfer that makes recovery composable with §10.2
// pruning: once descriptors of memoized-stable operations are pruned at
// every replica, the only way a recovering replica can re-learn the prefix
// is by receiving its outcome state, and that state must cross process
// boundaries (gob cannot carry the concrete state types, whose canonical
// representations are unexported).
//
// Contract:
//   - EncodeState is deterministic: equal states yield equal bytes.
//   - DecodeState(EncodeState(s)) is behaviourally identical to s — every
//     operator applied to the round-tripped state yields the same post-state
//     and value as applied to s. internal/spec.CheckSnapshotInstallEquivalence
//     is the checkable form of this obligation.
//   - DecodeState validates its input and fails on garbage rather than
//     constructing an ill-formed state.
type Snapshotter interface {
	// EncodeState renders s in the type's canonical wire form.
	EncodeState(s State) ([]byte, error)
	// DecodeState parses the canonical wire form back into a state.
	DecodeState(data []byte) (State, error)
}

// CanSnapshot reports whether dt supports state snapshots end to end. For
// Keyed this recurses into the inner type (Keyed implements Snapshotter
// structurally, but encoding fails at runtime if the inner type cannot).
func CanSnapshot(dt DataType) bool {
	if k, ok := dt.(Keyed); ok {
		return CanSnapshot(k.Inner)
	}
	_, ok := dt.(Snapshotter)
	return ok
}

// --- Counter ---

// EncodeState implements Snapshotter: 8-byte big-endian two's-complement.
func (Counter) EncodeState(s State) ([]byte, error) {
	cur, ok := s.(int64)
	if !ok {
		return nil, fmt.Errorf("dtype: counter snapshot of %T state", s)
	}
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(cur))
	return b, nil
}

// DecodeState implements Snapshotter.
func (Counter) DecodeState(data []byte) (State, error) {
	if len(data) != 8 {
		return nil, fmt.Errorf("dtype: counter snapshot of %d bytes, want 8", len(data))
	}
	return int64(binary.BigEndian.Uint64(data)), nil
}

// --- Register ---

// EncodeState implements Snapshotter: the register contents, verbatim.
func (Register) EncodeState(s State) ([]byte, error) {
	cur, ok := s.(string)
	if !ok {
		return nil, fmt.Errorf("dtype: register snapshot of %T state", s)
	}
	return []byte(cur), nil
}

// DecodeState implements Snapshotter.
func (Register) DecodeState(data []byte) (State, error) {
	return string(data), nil
}

// --- Set ---

// EncodeState implements Snapshotter: the canonical sorted member encoding.
func (Set) EncodeState(s State) ([]byte, error) {
	cur, ok := s.(SetState)
	if !ok {
		return nil, fmt.Errorf("dtype: set snapshot of %T state", s)
	}
	return []byte(cur.members), nil
}

// DecodeState implements Snapshotter. Members must be strictly ascending:
// sorted AND duplicate-free, or the decoded set would disagree with every
// honestly built one (e.g. on SetSize).
func (Set) DecodeState(data []byte) (State, error) {
	st := SetState{members: string(data)}
	ms := st.Members()
	for i := 1; i < len(ms); i++ {
		if ms[i] <= ms[i-1] {
			return nil, fmt.Errorf("dtype: set snapshot members not in canonical order")
		}
	}
	return st, nil
}

// --- Log ---

// EncodeState implements Snapshotter: the canonical joined-entries encoding.
func (Log) EncodeState(s State) ([]byte, error) {
	cur, ok := s.(LogState)
	if !ok {
		return nil, fmt.Errorf("dtype: log snapshot of %T state", s)
	}
	return []byte(cur.joined), nil
}

// DecodeState implements Snapshotter.
func (Log) DecodeState(data []byte) (State, error) {
	return LogState{joined: string(data)}, nil
}

// --- Bank ---

// EncodeState implements Snapshotter: the canonical account encoding.
func (Bank) EncodeState(s State) ([]byte, error) {
	cur, ok := s.(BankState)
	if !ok {
		return nil, fmt.Errorf("dtype: bank snapshot of %T state", s)
	}
	return []byte(cur.enc), nil
}

// DecodeState implements Snapshotter.
func (Bank) DecodeState(data []byte) (State, error) {
	st := BankState{enc: string(data)}
	// Validate every entry, then re-canonicalize through the state's own
	// builder to reject garbage: a valid encoding survives a no-op rebuild
	// unchanged.
	if st.enc != "" {
		entries := strings.Split(st.enc, "\x00")
		for _, kv := range entries {
			if strings.IndexByte(kv, '=') < 0 {
				return nil, fmt.Errorf("dtype: bank snapshot entry %q lacks '='", kv)
			}
		}
		rebuilt := BankState{}
		for _, kv := range entries {
			i := strings.IndexByte(kv, '=')
			rebuilt = rebuilt.with(kv[:i], st.Balance(kv[:i]))
		}
		if rebuilt.enc != st.enc {
			return nil, fmt.Errorf("dtype: bank snapshot not in canonical form")
		}
	}
	return st, nil
}

// --- Directory ---

// EncodeState implements Snapshotter: the canonical entry encoding.
func (Directory) EncodeState(s State) ([]byte, error) {
	cur, ok := s.(DirState)
	if !ok {
		return nil, fmt.Errorf("dtype: directory snapshot of %T state", s)
	}
	return []byte(cur.enc), nil
}

// DecodeState implements Snapshotter.
func (Directory) DecodeState(data []byte) (State, error) {
	st := DirState{enc: string(data)}
	// Validate attribute entries (decode assumes every "k=v" has its '='),
	// then decode/encode as the canonical-form check.
	if st.enc != "" {
		for _, part := range strings.Split(st.enc, "\x00") {
			fields := strings.Split(part, "\x01")
			if len(fields) != 2 {
				return nil, fmt.Errorf("dtype: directory snapshot entry %q malformed", part)
			}
			if fields[1] == "" {
				continue
			}
			for _, kv := range strings.Split(fields[1], "\x02") {
				if strings.IndexByte(kv, '=') < 0 {
					return nil, fmt.Errorf("dtype: directory snapshot attribute %q lacks '='", kv)
				}
			}
		}
	}
	if encodeDir(st.decode()).enc != st.enc {
		return nil, fmt.Errorf("dtype: directory snapshot not in canonical form")
	}
	return st, nil
}

// --- Keyed ---

// EncodeState implements Snapshotter for the keyed lift: sorted
// (key, inner-encoding) pairs, each length-prefixed with a uvarint. The
// inner type must itself implement Snapshotter.
func (k Keyed) EncodeState(s State) ([]byte, error) {
	sn, ok := k.Inner.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("dtype: keyed inner type %s has no snapshot encoding", k.Inner.Name())
	}
	cur, ok := s.(KeyedState)
	if !ok {
		return nil, fmt.Errorf("dtype: keyed snapshot of %T state", s)
	}
	keys := make([]string, 0, len(cur))
	for key := range cur {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var out []byte
	var scratch [binary.MaxVarintLen64]byte
	appendBytes := func(b []byte) {
		n := binary.PutUvarint(scratch[:], uint64(len(b)))
		out = append(out, scratch[:n]...)
		out = append(out, b...)
	}
	for _, key := range keys {
		enc, err := sn.EncodeState(cur[key])
		if err != nil {
			return nil, fmt.Errorf("dtype: keyed snapshot of object %q: %w", key, err)
		}
		appendBytes([]byte(key))
		appendBytes(enc)
	}
	return out, nil
}

// DecodeState implements Snapshotter for the keyed lift.
func (k Keyed) DecodeState(data []byte) (State, error) {
	sn, ok := k.Inner.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("dtype: keyed inner type %s has no snapshot encoding", k.Inner.Name())
	}
	if len(data) == 0 {
		return KeyedState(nil), nil
	}
	out := make(KeyedState)
	rest := data
	next := func() ([]byte, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || n > uint64(len(rest)-used) {
			return nil, fmt.Errorf("dtype: keyed snapshot truncated")
		}
		b := rest[used : used+int(n)]
		rest = rest[used+int(n):]
		return b, nil
	}
	prevKey := ""
	for len(rest) > 0 {
		keyB, err := next()
		if err != nil {
			return nil, err
		}
		encB, err := next()
		if err != nil {
			return nil, err
		}
		key := string(keyB)
		if len(out) > 0 && key <= prevKey {
			return nil, fmt.Errorf("dtype: keyed snapshot keys not in canonical order")
		}
		inner, err := sn.DecodeState(encB)
		if err != nil {
			return nil, fmt.Errorf("dtype: keyed snapshot object %q: %w", key, err)
		}
		out[key] = inner
		prevKey = key
	}
	return out, nil
}

var (
	_ Snapshotter = Counter{}
	_ Snapshotter = Register{}
	_ Snapshotter = Set{}
	_ Snapshotter = Log{}
	_ Snapshotter = Bank{}
	_ Snapshotter = Directory{}
	_ Snapshotter = Keyed{}
)
