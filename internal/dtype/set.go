package dtype

import (
	"fmt"
	"sort"
	"strings"
)

// Set is an add/remove set of string elements with membership and size
// queries. Its state is an immutable sorted membership snapshot.
type Set struct{}

var (
	_ DataType         = Set{}
	_ Commuter         = Set{}
	_ ObliviousChecker = Set{}
)

// SetAdd inserts Elem; its reportable value is "ok".
type SetAdd struct{ Elem string }

// SetRemove deletes Elem; its reportable value is "ok".
type SetRemove struct{ Elem string }

// SetContains reports whether Elem is a member (value: bool).
type SetContains struct{ Elem string }

// SetSize reports the number of members (value: int).
type SetSize struct{}

func (o SetAdd) String() string      { return fmt.Sprintf("add(%s)", o.Elem) }
func (o SetRemove) String() string   { return fmt.Sprintf("remove(%s)", o.Elem) }
func (o SetContains) String() string { return fmt.Sprintf("contains(%s)", o.Elem) }
func (SetSize) String() string       { return "size" }

// SetState is the canonical state of a Set: a sorted list of members.
// It is treated as immutable.
type SetState struct {
	members string // "\x00"-joined sorted members; canonical and comparable
}

// Members returns the member list.
func (s SetState) Members() []string {
	if s.members == "" {
		return nil
	}
	return strings.Split(s.members, "\x00")
}

// Has reports membership.
func (s SetState) Has(elem string) bool {
	for _, m := range s.Members() {
		if m == elem {
			return true
		}
	}
	return false
}

func (s SetState) String() string { return "{" + strings.ReplaceAll(s.members, "\x00", ",") + "}" }

func setStateOf(members []string) SetState {
	sort.Strings(members)
	return SetState{members: strings.Join(members, "\x00")}
}

// Name implements DataType.
func (Set) Name() string { return "set" }

// Initial implements DataType.
func (Set) Initial() State { return SetState{} }

// Apply implements DataType.
func (Set) Apply(s State, op Operator) (State, Value) {
	cur, ok := s.(SetState)
	if !ok {
		panic(fmt.Sprintf("dtype: set state has type %T, want SetState", s))
	}
	switch o := op.(type) {
	case SetAdd:
		if cur.Has(o.Elem) {
			return cur, "ok"
		}
		return setStateOf(append(cur.Members(), o.Elem)), "ok"
	case SetRemove:
		if !cur.Has(o.Elem) {
			return cur, "ok"
		}
		ms := cur.Members()
		out := make([]string, 0, len(ms)-1)
		for _, m := range ms {
			if m != o.Elem {
				out = append(out, m)
			}
		}
		return setStateOf(out), "ok"
	case SetContains:
		return cur, cur.Has(o.Elem)
	case SetSize:
		return cur, len(cur.Members())
	default:
		panic(fmt.Sprintf("dtype: set does not support operator %T", op))
	}
}

// Commute implements Commuter: mutators on different elements commute;
// add and remove of the same element do not; queries always commute.
func (Set) Commute(op1, op2 Operator) bool {
	e1, mut1 := setMutTarget(op1)
	e2, mut2 := setMutTarget(op2)
	if !mut1 || !mut2 {
		return true
	}
	if e1 != e2 {
		return true
	}
	// Same element: add/add and remove/remove are idempotent and commute;
	// add/remove do not.
	_, a1 := op1.(SetAdd)
	_, a2 := op2.(SetAdd)
	return a1 == a2
}

// Oblivious implements ObliviousChecker: a query is not oblivious to a
// mutator of the element it observes (SetSize observes all elements).
func (Set) Oblivious(op1, op2 Operator) bool {
	e2, mut2 := setMutTarget(op2)
	if !mut2 {
		return true // op2 is a query: cannot affect op1's value
	}
	switch q := op1.(type) {
	case SetContains:
		return q.Elem != e2
	case SetSize:
		return false
	default:
		return true // mutators report "ok" regardless
	}
}

func setMutTarget(op Operator) (elem string, isMutator bool) {
	switch o := op.(type) {
	case SetAdd:
		return o.Elem, true
	case SetRemove:
		return o.Elem, true
	default:
		return "", false
	}
}
