package dtype

import (
	"encoding/gob"
	"sort"
	"sync"
)

var registerOnce sync.Once

// builtin lists the data types shipped with the package, keyed by their
// Name(). cmd tools and multi-process deployments select a data type by
// this name, so every process of a cluster agrees on the object semantics.
var builtin = map[string]DataType{
	Counter{}.Name():   Counter{},
	Register{}.Name():  Register{},
	Set{}.Name():       Set{},
	Directory{}.Name(): Directory{},
	Log{}.Name():       Log{},
	Bank{}.Name():      Bank{},
}

// ByName returns the built-in data type with the given Name().
func ByName(name string) (DataType, bool) {
	dt, ok := builtin[name]
	return dt, ok
}

// Names returns the built-in data type names, sorted.
func Names() []string {
	out := make([]string, 0, len(builtin))
	for name := range builtin {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RegisterWire registers every built-in operator type with encoding/gob, so
// operators can cross process boundaries inside interface-typed fields
// (Operation.Op). Reportable values of the built-in types are primitives
// and []string, which gob transmits without registration. RegisterWire is
// idempotent and safe to call from multiple packages.
func RegisterWire() {
	registerOnce.Do(func() {
		for _, op := range []Operator{
			CtrAdd{}, CtrDouble{}, CtrRead{},
			RegWrite{}, RegRead{},
			SetAdd{}, SetRemove{}, SetContains{}, SetSize{},
			DirBind{}, DirUnbind{}, DirSetAttr{}, DirGetAttr{}, DirLookup{}, DirList{},
			LogAppend{}, LogRead{}, LogLen{},
			BankDeposit{}, BankWithdraw{}, BankBalance{},
			KeyedOp{}, KeyInstall{},
		} {
			gob.Register(op)
		}
	})
}
