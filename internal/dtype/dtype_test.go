package dtype

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRegisterApply(t *testing.T) {
	var dt Register
	s := dt.Initial()
	s, v := dt.Apply(s, RegWrite{Val: "x"})
	if v != "ok" {
		t.Fatalf("write value = %v", v)
	}
	_, v = dt.Apply(s, RegRead{})
	if v != "x" {
		t.Fatalf("read = %v, want x", v)
	}
	// Apply must not mutate the input state.
	_, _ = dt.Apply(s, RegWrite{Val: "y"})
	_, v = dt.Apply(s, RegRead{})
	if v != "x" {
		t.Fatal("Apply mutated its input state")
	}
}

func TestCounterApply(t *testing.T) {
	var dt Counter
	s := dt.Initial()
	s, _ = dt.Apply(s, CtrAdd{N: 3})
	s, _ = dt.Apply(s, CtrDouble{})
	_, v := dt.Apply(s, CtrRead{})
	if v != int64(6) {
		t.Fatalf("counter = %v, want 6", v)
	}
}

// The §10.3 increment/double example: from state 1, the two orders disagree.
func TestCounterIncDoubleNonCommuting(t *testing.T) {
	var dt Counter
	one, _ := dt.Apply(dt.Initial(), CtrAdd{N: 1})
	a := ApplyAll(dt, one, []Operator{CtrAdd{N: 1}, CtrDouble{}})
	b := ApplyAll(dt, one, []Operator{CtrDouble{}, CtrAdd{N: 1}})
	if a != int64(4) || b != int64(3) {
		t.Fatalf("inc;double = %v (want 4), double;inc = %v (want 3)", a, b)
	}
	if dt.Commute(CtrAdd{N: 1}, CtrDouble{}) {
		t.Fatal("Commute claims add(1) and double commute")
	}
	if !dt.Commute(CtrAdd{N: 0}, CtrDouble{}) {
		t.Fatal("add(0) trivially commutes with double")
	}
}

func TestSetApply(t *testing.T) {
	var dt Set
	s := dt.Initial()
	s, _ = dt.Apply(s, SetAdd{Elem: "b"})
	s, _ = dt.Apply(s, SetAdd{Elem: "a"})
	s, _ = dt.Apply(s, SetAdd{Elem: "a"}) // idempotent
	_, v := dt.Apply(s, SetSize{})
	if v != 2 {
		t.Fatalf("size = %v, want 2", v)
	}
	_, v = dt.Apply(s, SetContains{Elem: "a"})
	if v != true {
		t.Fatalf("contains(a) = %v", v)
	}
	s, _ = dt.Apply(s, SetRemove{Elem: "a"})
	_, v = dt.Apply(s, SetContains{Elem: "a"})
	if v != false {
		t.Fatalf("contains(a) after remove = %v", v)
	}
	ss := s.(SetState)
	if got := ss.Members(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("members = %v, want [b]", got)
	}
}

func TestDirectoryApply(t *testing.T) {
	var dt Directory
	s := dt.Initial()
	// SetAttr before Bind fails — the dependency the paper resolves with
	// prev sets.
	s2, v := dt.Apply(s, DirSetAttr{Name: "svc", Key: "host", Val: "h1"})
	if v != "no-such-name" {
		t.Fatalf("setattr on unbound = %v", v)
	}
	if fmt.Sprint(s2) != fmt.Sprint(s) {
		t.Fatal("failed setattr changed state")
	}
	s, _ = dt.Apply(s, DirBind{Name: "svc"})
	s, v = dt.Apply(s, DirSetAttr{Name: "svc", Key: "host", Val: "h1"})
	if v != "ok" {
		t.Fatalf("setattr = %v", v)
	}
	_, v = dt.Apply(s, DirGetAttr{Name: "svc", Key: "host"})
	if v != "h1" {
		t.Fatalf("getattr = %v", v)
	}
	_, v = dt.Apply(s, DirLookup{Name: "svc"})
	if v != true {
		t.Fatalf("lookup = %v", v)
	}
	s, _ = dt.Apply(s, DirBind{Name: "alpha"})
	_, v = dt.Apply(s, DirList{})
	names := v.([]string)
	if len(names) != 2 || names[0] != "alpha" || names[1] != "svc" {
		t.Fatalf("list = %v", names)
	}
	s, _ = dt.Apply(s, DirUnbind{Name: "svc"})
	_, v = dt.Apply(s, DirLookup{Name: "svc"})
	if v != false {
		t.Fatalf("lookup after unbind = %v", v)
	}
	_, v = dt.Apply(s, DirGetAttr{Name: "svc", Key: "host"})
	if v != "" {
		t.Fatalf("getattr after unbind = %v", v)
	}
}

func TestLogApply(t *testing.T) {
	var dt Log
	s := dt.Initial()
	s, v := dt.Apply(s, LogAppend{Entry: "a"})
	if v != 1 {
		t.Fatalf("first append length = %v", v)
	}
	s, v = dt.Apply(s, LogAppend{Entry: "b"})
	if v != 2 {
		t.Fatalf("second append length = %v", v)
	}
	_, v = dt.Apply(s, LogRead{})
	if v != "a|b" {
		t.Fatalf("read = %v", v)
	}
	_, v = dt.Apply(s, LogLen{})
	if v != 2 {
		t.Fatalf("len = %v", v)
	}
	if es := s.(LogState).Entries(); len(es) != 2 || es[0] != "a" {
		t.Fatalf("entries = %v", es)
	}
}

func TestBankApply(t *testing.T) {
	var dt Bank
	s := dt.Initial()
	s, _ = dt.Apply(s, BankDeposit{Account: "a", Amount: 10})
	s, v := dt.Apply(s, BankWithdraw{Account: "a", Amount: 4})
	if v != "ok" {
		t.Fatalf("withdraw = %v", v)
	}
	s, v = dt.Apply(s, BankWithdraw{Account: "a", Amount: 100})
	if v != "insufficient" {
		t.Fatalf("overdraw = %v", v)
	}
	_, v = dt.Apply(s, BankBalance{Account: "a"})
	if v != int64(6) {
		t.Fatalf("balance = %v, want 6", v)
	}
	_, v = dt.Apply(s, BankBalance{Account: "zzz"})
	if v != int64(0) {
		t.Fatalf("absent account balance = %v", v)
	}
}

func TestApplyAllValues(t *testing.T) {
	var dt Counter
	s, vals := ApplyAllValues(dt, dt.Initial(), []Operator{CtrAdd{N: 2}, CtrRead{}, CtrDouble{}, CtrRead{}})
	if s != int64(4) {
		t.Fatalf("final state = %v", s)
	}
	if vals[1] != int64(2) || vals[3] != int64(4) {
		t.Fatalf("vals = %v", vals)
	}
	if got := ApplyAll(dt, dt.Initial(), nil); got != int64(0) {
		t.Fatalf("ApplyAll(empty) = %v", got)
	}
}

func TestApplyPanicsOnBadInput(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"register bad state", func() { Register{}.Apply(42, RegRead{}) }},
		{"register bad op", func() { Register{}.Apply("", CtrRead{}) }},
		{"counter bad state", func() { Counter{}.Apply("x", CtrRead{}) }},
		{"counter bad op", func() { Counter{}.Apply(int64(0), RegRead{}) }},
		{"set bad state", func() { Set{}.Apply(3, SetSize{}) }},
		{"set bad op", func() { Set{}.Apply(SetState{}, RegRead{}) }},
		{"directory bad op", func() { Directory{}.Apply(DirState{}, RegRead{}) }},
		{"log bad op", func() { Log{}.Apply(LogState{}, RegRead{}) }},
		{"bank bad op", func() { Bank{}.Apply(BankState{}, RegRead{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

// --- Oracle cross-checks: declared Commute/Oblivious vs brute force ---

func registerOps() []Operator {
	return []Operator{RegRead{}, RegWrite{Val: "p"}, RegWrite{Val: "q"}, RegWrite{Val: "p"}}
}

func registerStates() []State { return []State{"", "p", "q", "z"} }

func counterOps() []Operator {
	return []Operator{CtrRead{}, CtrAdd{N: 0}, CtrAdd{N: 1}, CtrAdd{N: -2}, CtrDouble{}}
}

func counterStates() []State { return []State{int64(0), int64(1), int64(-3), int64(7)} }

func setOps() []Operator {
	return []Operator{
		SetAdd{Elem: "a"}, SetAdd{Elem: "b"}, SetRemove{Elem: "a"}, SetRemove{Elem: "b"},
		SetContains{Elem: "a"}, SetContains{Elem: "b"}, SetSize{},
	}
}

func setStates() []State {
	return []State{SetState{}, setStateOf([]string{"a"}), setStateOf([]string{"b"}), setStateOf([]string{"a", "b"})}
}

func dirOps() []Operator {
	return []Operator{
		DirBind{Name: "n"}, DirBind{Name: "m"}, DirUnbind{Name: "n"},
		DirSetAttr{Name: "n", Key: "k", Val: "1"}, DirSetAttr{Name: "n", Key: "k", Val: "2"},
		DirSetAttr{Name: "n", Key: "j", Val: "1"}, DirSetAttr{Name: "m", Key: "k", Val: "1"},
		DirGetAttr{Name: "n", Key: "k"}, DirLookup{Name: "n"}, DirLookup{Name: "m"}, DirList{},
	}
}

func dirStates() []State {
	var dt Directory
	s0 := dt.Initial()
	s1, _ := dt.Apply(s0, DirBind{Name: "n"})
	s2, _ := dt.Apply(s1, DirSetAttr{Name: "n", Key: "k", Val: "9"})
	s3, _ := dt.Apply(s2, DirBind{Name: "m"})
	return []State{s0, s1, s2, s3}
}

func logOps() []Operator {
	return []Operator{LogAppend{Entry: "x"}, LogAppend{Entry: "y"}, LogRead{}, LogLen{}}
}

func logStates() []State {
	var dt Log
	s0 := dt.Initial()
	s1, _ := dt.Apply(s0, LogAppend{Entry: "e"})
	return []State{s0, s1}
}

func bankOps() []Operator {
	return []Operator{
		BankDeposit{Account: "a", Amount: 5}, BankDeposit{Account: "b", Amount: 3},
		BankWithdraw{Account: "a", Amount: 4}, BankWithdraw{Account: "a", Amount: 9},
		BankBalance{Account: "a"}, BankBalance{Account: "b"},
	}
}

func bankStates() []State {
	var dt Bank
	s0 := dt.Initial()
	s1, _ := dt.Apply(s0, BankDeposit{Account: "a", Amount: 6})
	s2, _ := dt.Apply(s1, BankDeposit{Account: "b", Amount: 2})
	return []State{s0, s1, s2}
}

// TestCommuteOracle: whenever a data type declares Commute(op1,op2)=true, the
// brute-force check over sampled states must agree. (Declared false is
// allowed to be conservative, but for our types we assert exactness on the
// sampled states in both directions to keep the oracle honest.)
func TestCommuteOracle(t *testing.T) {
	cases := []struct {
		dt     DataType
		ops    []Operator
		states []State
	}{
		{Register{}, registerOps(), registerStates()},
		{Counter{}, counterOps(), counterStates()},
		{Set{}, setOps(), setStates()},
		{Directory{}, dirOps(), dirStates()},
		{Log{}, logOps(), logStates()},
		{Bank{}, bankOps(), bankStates()},
	}
	for _, tc := range cases {
		t.Run(tc.dt.Name(), func(t *testing.T) {
			c := tc.dt.(Commuter)
			for _, op1 := range tc.ops {
				for _, op2 := range tc.ops {
					declared := c.Commute(op1, op2)
					actual := CheckCommute(tc.dt, op1, op2, tc.states)
					if declared && !actual {
						t.Errorf("%v / %v: declared commuting but states diverge", op1, op2)
					}
					if !declared && actual {
						// Conservative "false" is sound; we only log exact
						// mismatches that would matter for optimization
						// quality, not correctness.
						t.Logf("note: %v / %v declared non-commuting but agree on sampled states", op1, op2)
					}
				}
			}
		})
	}
}

// TestObliviousOracle: declared Oblivious(op1,op2)=true must match brute
// force over sampled states.
func TestObliviousOracle(t *testing.T) {
	cases := []struct {
		dt     DataType
		ops    []Operator
		states []State
	}{
		{Register{}, registerOps(), registerStates()},
		{Counter{}, counterOps(), counterStates()},
		{Set{}, setOps(), setStates()},
		{Directory{}, dirOps(), dirStates()},
		{Log{}, logOps(), logStates()},
		{Bank{}, bankOps(), bankStates()},
	}
	for _, tc := range cases {
		t.Run(tc.dt.Name(), func(t *testing.T) {
			o := tc.dt.(ObliviousChecker)
			for _, op1 := range tc.ops {
				for _, op2 := range tc.ops {
					if o.Oblivious(op1, op2) && !CheckOblivious(tc.dt, op1, op2, tc.states) {
						t.Errorf("%v declared oblivious to %v but value changes", op1, op2)
					}
				}
			}
		})
	}
}

// TestIndependent: Independent must require both directions of obliviousness
// plus commutativity, and must be false for types lacking the interfaces.
func TestIndependent(t *testing.T) {
	var dt Counter
	if !Independent(dt, CtrAdd{N: 1}, CtrAdd{N: 2}) {
		t.Error("two adds should be independent")
	}
	if Independent(dt, CtrRead{}, CtrAdd{N: 1}) {
		t.Error("read is not oblivious to add; not independent")
	}
	if Independent(bareDT{}, CtrAdd{N: 1}, CtrAdd{N: 2}) {
		t.Error("types without Commuter must be reported dependent")
	}
}

// bareDT implements only DataType.
type bareDT struct{}

func (bareDT) Name() string                             { return "bare" }
func (bareDT) Initial() State                           { return 0 }
func (bareDT) Apply(s State, _ Operator) (State, Value) { return s, "ok" }

// Property: applying a random permutation of pairwise-commuting set mutators
// yields the same final state.
func TestCommutingPermutationsConverge(t *testing.T) {
	var dt Set
	rng := rand.New(rand.NewSource(5))
	ops := []Operator{
		SetAdd{Elem: "a"}, SetAdd{Elem: "b"}, SetAdd{Elem: "c"}, SetRemove{Elem: "d"},
	}
	base := fmt.Sprint(ApplyAll(dt, dt.Initial(), ops))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(ops))
		shuffled := make([]Operator, len(ops))
		for i, p := range perm {
			shuffled[i] = ops[p]
		}
		if got := fmt.Sprint(ApplyAll(dt, dt.Initial(), shuffled)); got != base {
			t.Fatalf("permutation %v produced %s, want %s", perm, got, base)
		}
	}
}

func TestOperatorStrings(t *testing.T) {
	// String forms are part of the diagnostic API; keep them stable.
	checks := map[string]fmt.Stringer{
		`write("v")`:     RegWrite{Val: "v"},
		"add(3)":         CtrAdd{N: 3},
		"double":         CtrDouble{},
		"add(x)":         SetAdd{Elem: "x"},
		"bind(n)":        DirBind{Name: "n"},
		"setattr(n.k=v)": DirSetAttr{Name: "n", Key: "k", Val: "v"},
		"append(e)":      LogAppend{Entry: "e"},
		"deposit(a,7)":   BankDeposit{Account: "a", Amount: 7},
		"withdraw(a,7)":  BankWithdraw{Account: "a", Amount: 7},
		"balance(a)":     BankBalance{Account: "a"},
		"contains(x)":    SetContains{Elem: "x"},
		"lookup(n)":      DirLookup{Name: "n"},
		"getattr(n.k)":   DirGetAttr{Name: "n", Key: "k"},
		"unbind(n)":      DirUnbind{Name: "n"},
		"remove(x)":      SetRemove{Elem: "x"},
	}
	for want, op := range checks {
		if got := op.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
