package dtype

import "fmt"

// Register is a read/write register data type. The state is the current
// value (a string); the initial state is the empty string.
type Register struct{}

var (
	_ DataType         = Register{}
	_ Commuter         = Register{}
	_ ObliviousChecker = Register{}
)

// RegWrite sets the register to Val; its reportable value is "ok".
type RegWrite struct{ Val string }

// RegRead returns the current register contents.
type RegRead struct{}

func (w RegWrite) String() string { return fmt.Sprintf("write(%q)", w.Val) }
func (RegRead) String() string    { return "read" }

// Name implements DataType.
func (Register) Name() string { return "register" }

// Initial implements DataType.
func (Register) Initial() State { return "" }

// Apply implements DataType.
func (Register) Apply(s State, op Operator) (State, Value) {
	cur, ok := s.(string)
	if !ok {
		panic(fmt.Sprintf("dtype: register state has type %T, want string", s))
	}
	switch o := op.(type) {
	case RegWrite:
		return o.Val, "ok"
	case RegRead:
		return cur, cur
	default:
		panic(fmt.Sprintf("dtype: register does not support operator %T", op))
	}
}

// Commute implements Commuter: two register operators commute unless both
// are writes of different values.
func (Register) Commute(op1, op2 Operator) bool {
	w1, isW1 := op1.(RegWrite)
	w2, isW2 := op2.(RegWrite)
	if isW1 && isW2 {
		return w1.Val == w2.Val
	}
	return true // at least one read: reads never change state
}

// Oblivious implements ObliviousChecker: op1 is oblivious to op2 unless op1
// is a read and op2 is a write (the read's value depends on the write).
func (Register) Oblivious(op1, op2 Operator) bool {
	_, r1 := op1.(RegRead)
	_, w2 := op2.(RegWrite)
	return !(r1 && w2)
}
