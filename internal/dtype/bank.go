package dtype

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Bank is a multi-account balance store with deposits, withdrawals (which
// fail rather than overdraw), and balance queries. Withdrawals are
// state-dependent (their success observes the balance), so Bank exercises
// operations whose values — not just states — depend on ordering.
type Bank struct{}

var (
	_ DataType         = Bank{}
	_ Commuter         = Bank{}
	_ ObliviousChecker = Bank{}
)

// BankDeposit adds Amount (> 0) to Account. Value: "ok".
type BankDeposit struct {
	Account string
	Amount  int64
}

// BankWithdraw subtracts Amount from Account if the balance suffices.
// Value: "ok" or "insufficient".
type BankWithdraw struct {
	Account string
	Amount  int64
}

// BankBalance reads the balance of Account (value: int64).
type BankBalance struct{ Account string }

func (o BankDeposit) String() string  { return fmt.Sprintf("deposit(%s,%d)", o.Account, o.Amount) }
func (o BankWithdraw) String() string { return fmt.Sprintf("withdraw(%s,%d)", o.Account, o.Amount) }
func (o BankBalance) String() string  { return fmt.Sprintf("balance(%s)", o.Account) }

// BankState is the immutable canonical state of a Bank: sorted
// "account=balance" entries.
type BankState struct{ enc string }

func (s BankState) String() string { return "bank[" + strings.ReplaceAll(s.enc, "\x00", " ") + "]" }

// Balance returns the balance of an account (0 if absent).
func (s BankState) Balance(account string) int64 {
	if s.enc == "" {
		return 0
	}
	for _, kv := range strings.Split(s.enc, "\x00") {
		i := strings.IndexByte(kv, '=')
		if kv[:i] == account {
			n, _ := strconv.ParseInt(kv[i+1:], 10, 64)
			return n
		}
	}
	return 0
}

func (s BankState) with(account string, balance int64) BankState {
	m := make(map[string]int64)
	if s.enc != "" {
		for _, kv := range strings.Split(s.enc, "\x00") {
			i := strings.IndexByte(kv, '=')
			n, _ := strconv.ParseInt(kv[i+1:], 10, 64)
			m[kv[:i]] = n
		}
	}
	m[account] = balance
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		if m[k] == 0 {
			continue // canonical: zero balances are absent
		}
		parts = append(parts, k+"="+strconv.FormatInt(m[k], 10))
	}
	return BankState{enc: strings.Join(parts, "\x00")}
}

// Name implements DataType.
func (Bank) Name() string { return "bank" }

// Initial implements DataType.
func (Bank) Initial() State { return BankState{} }

// Apply implements DataType.
func (Bank) Apply(s State, op Operator) (State, Value) {
	cur, ok := s.(BankState)
	if !ok {
		panic(fmt.Sprintf("dtype: bank state has type %T, want BankState", s))
	}
	switch o := op.(type) {
	case BankDeposit:
		return cur.with(o.Account, cur.Balance(o.Account)+o.Amount), "ok"
	case BankWithdraw:
		bal := cur.Balance(o.Account)
		if bal < o.Amount {
			return cur, "insufficient"
		}
		return cur.with(o.Account, bal-o.Amount), "ok"
	case BankBalance:
		return cur, cur.Balance(o.Account)
	default:
		panic(fmt.Sprintf("dtype: bank does not support operator %T", op))
	}
}

// Commute implements Commuter: operations on different accounts commute;
// deposits on the same account commute with each other; withdrawals do not
// commute with other mutators of the same account (success depends on
// interleaving).
func (Bank) Commute(op1, op2 Operator) bool {
	a1, m1 := bankMutTarget(op1)
	a2, m2 := bankMutTarget(op2)
	if !m1 || !m2 {
		return true
	}
	if a1 != a2 {
		return true
	}
	_, d1 := op1.(BankDeposit)
	_, d2 := op2.(BankDeposit)
	return d1 && d2
}

// Oblivious implements ObliviousChecker: balance queries and withdrawals
// observe mutators of their account; deposits are oblivious to everything.
func (Bank) Oblivious(op1, op2 Operator) bool {
	a2, m2 := bankMutTarget(op2)
	if !m2 {
		return true
	}
	switch q := op1.(type) {
	case BankBalance:
		return q.Account != a2
	case BankWithdraw:
		return q.Account != a2
	default:
		return true
	}
}

func bankMutTarget(op Operator) (account string, isMutator bool) {
	switch o := op.(type) {
	case BankDeposit:
		return o.Account, true
	case BankWithdraw:
		return o.Account, true
	default:
		return "", false
	}
}
