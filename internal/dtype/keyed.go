package dtype

import "fmt"

// Keyed lifts an inner serial data type to a keyspace of independent named
// objects: the state is a map from object name to an inner state, every
// operator addresses one object (KeyedOp), and the reportable value is the
// inner operator's value unchanged. A Keyed object is still ONE serial
// data type — all objects bound to it share a single eventual total order —
// which is exactly what a keyspace shard replicates: many small objects,
// one ESDS cluster. Operations on distinct objects are independent (they
// commute and are mutually oblivious), so nothing is lost by sharing the
// order.
type Keyed struct {
	Inner DataType
}

var (
	_ DataType         = Keyed{}
	_ Commuter         = Keyed{}
	_ ObliviousChecker = Keyed{}
)

// NewKeyed returns the keyed lift of inner.
func NewKeyed(inner DataType) Keyed {
	if inner == nil {
		panic("dtype: nil inner data type")
	}
	if _, nested := inner.(Keyed); nested {
		panic("dtype: nested keyed data type")
	}
	return Keyed{Inner: inner}
}

// KeyedOp applies Op of the inner data type to the object named Key.
// Objects spring into existence at the inner type's initial state on first
// use.
type KeyedOp struct {
	Key string
	Op  Operator
}

func (o KeyedOp) String() string { return fmt.Sprintf("%s/%v", o.Key, o.Op) }

// KeyedState is the state of a Keyed object: object name → inner state.
// It is treated as immutable; Apply copies it (copy-on-write at map
// granularity), which keeps per-shard states cheap when the keyspace is
// partitioned across many shards.
type KeyedState map[string]State

// KeyInstall replaces the named object's state with a decoded canonical
// encoding (the inner type's dtype.Snapshotter form). It is the migration
// payload of live resharding: the source shard drains the object, exports
// its solid state, and the resize driver submits a KeyInstall through the
// DESTINATION shard's ordinary operation pipeline — so the install is
// labeled, gossiped, memoized, snapshotted, and recovered exactly like any
// other operation, and every later operation on the object is ordered
// after it by the algorithm itself (no parallel install path to keep
// consistent). Decoding failures are deterministic no-ops whose reportable
// value carries the error: a hostile or corrupt install must not crash a
// replica, and all replicas must agree on the (non-)effect.
type KeyInstall struct {
	Key   string
	State []byte
	// Subsumes lists the operations whose effects State already contains —
	// the object's entire source-era history. A replica that has applied
	// the install treats these identifiers as satisfied prev constraints:
	// a client may legitimately constrain a new operation on a migrated
	// object after ANY operation it ever saw answered, including ones
	// whose descriptors §10.2 pruning has long discarded at the source.
	// (OpRef mirrors ops.ID; the ops package depends on this one, so the
	// identifier pair is restated here.)
	Subsumes []OpRef
}

// OpRef names an operation (client, sequence) without importing the ops
// package. See KeyInstall.Subsumes.
type OpRef struct {
	Client string
	Seq    uint64
}

func (o KeyInstall) String() string { return fmt.Sprintf("%s/install[%d bytes]", o.Key, len(o.State)) }

// KeyInstalled is the reportable value of a successful KeyInstall.
const KeyInstalled = "installed"

// Name implements DataType.
func (k Keyed) Name() string { return "keyed:" + k.Inner.Name() }

// Initial implements DataType: an empty keyspace.
func (k Keyed) Initial() State { return KeyedState(nil) }

// Apply implements DataType: it applies the inner operator to the named
// object's state and reports the inner value.
func (k Keyed) Apply(s State, op Operator) (State, Value) {
	cur, ok := s.(KeyedState)
	if !ok {
		panic(fmt.Sprintf("dtype: keyed state has type %T, want KeyedState", s))
	}
	var key string
	var next State
	var v Value
	switch o := op.(type) {
	case KeyedOp:
		key = o.Key
		inner, ok := cur[key]
		if !ok {
			inner = k.Inner.Initial()
		}
		next, v = k.Inner.Apply(inner, o.Op)
	case KeyInstall:
		key = o.Key
		sn, ok := k.Inner.(Snapshotter)
		if !ok {
			return cur, fmt.Sprintf("install failed: inner type %s has no snapshot encoding", k.Inner.Name())
		}
		decoded, err := sn.DecodeState(o.State)
		if err != nil {
			return cur, fmt.Sprintf("install failed: %v", err)
		}
		next, v = decoded, Value(KeyInstalled)
	default:
		panic(fmt.Sprintf("dtype: keyed data type does not support operator %T", op))
	}
	out := make(KeyedState, len(cur)+1)
	for name, st := range cur {
		out[name] = st
	}
	out[key] = next
	return out, v
}

// KeyOf extracts the object name an operator addresses: the Key of a
// KeyedOp or KeyInstall. It reports false for operators of non-keyed
// types — the predicate routing layers (hash ring, migration freeze)
// dispatch on.
func KeyOf(op Operator) (string, bool) {
	switch o := op.(type) {
	case KeyedOp:
		return o.Key, true
	case KeyInstall:
		return o.Key, true
	}
	return "", false
}

// Commute implements Commuter: operators on distinct objects always
// commute; operators on the same object commute iff the inner type says
// so (false when it cannot tell — the conservative answer). A KeyInstall
// never commutes with a same-object operator: it replaces the whole
// object state, so order against every other touch of the object matters.
func (k Keyed) Commute(op1, op2 Operator) bool {
	k1, ok1 := KeyOf(op1)
	k2, ok2 := KeyOf(op2)
	if !ok1 || !ok2 {
		return false
	}
	if k1 != k2 {
		return true
	}
	o1, isOp1 := op1.(KeyedOp)
	o2, isOp2 := op2.(KeyedOp)
	if !isOp1 || !isOp2 {
		return false // at least one install: order always matters
	}
	if c, ok := k.Inner.(Commuter); ok {
		return c.Commute(o1.Op, o2.Op)
	}
	return false
}

// Oblivious implements ObliviousChecker: an operator's value cannot depend
// on operators addressing other objects; same-object pairs delegate to the
// inner type (and installs are never oblivious to same-object operators —
// an install's meaning is exactly the state it replaces).
func (k Keyed) Oblivious(op1, op2 Operator) bool {
	k1, ok1 := KeyOf(op1)
	k2, ok2 := KeyOf(op2)
	if !ok1 || !ok2 {
		return false
	}
	if k1 != k2 {
		return true
	}
	o1, isOp1 := op1.(KeyedOp)
	o2, isOp2 := op2.(KeyedOp)
	if !isOp1 || !isOp2 {
		return false
	}
	if c, ok := k.Inner.(ObliviousChecker); ok {
		return c.Oblivious(o1.Op, o2.Op)
	}
	return false
}
