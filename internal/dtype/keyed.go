package dtype

import "fmt"

// Keyed lifts an inner serial data type to a keyspace of independent named
// objects: the state is a map from object name to an inner state, every
// operator addresses one object (KeyedOp), and the reportable value is the
// inner operator's value unchanged. A Keyed object is still ONE serial
// data type — all objects bound to it share a single eventual total order —
// which is exactly what a keyspace shard replicates: many small objects,
// one ESDS cluster. Operations on distinct objects are independent (they
// commute and are mutually oblivious), so nothing is lost by sharing the
// order.
type Keyed struct {
	Inner DataType
}

var (
	_ DataType         = Keyed{}
	_ Commuter         = Keyed{}
	_ ObliviousChecker = Keyed{}
)

// NewKeyed returns the keyed lift of inner.
func NewKeyed(inner DataType) Keyed {
	if inner == nil {
		panic("dtype: nil inner data type")
	}
	if _, nested := inner.(Keyed); nested {
		panic("dtype: nested keyed data type")
	}
	return Keyed{Inner: inner}
}

// KeyedOp applies Op of the inner data type to the object named Key.
// Objects spring into existence at the inner type's initial state on first
// use.
type KeyedOp struct {
	Key string
	Op  Operator
}

func (o KeyedOp) String() string { return fmt.Sprintf("%s/%v", o.Key, o.Op) }

// KeyedState is the state of a Keyed object: object name → inner state.
// It is treated as immutable; Apply copies it (copy-on-write at map
// granularity), which keeps per-shard states cheap when the keyspace is
// partitioned across many shards.
type KeyedState map[string]State

// Name implements DataType.
func (k Keyed) Name() string { return "keyed:" + k.Inner.Name() }

// Initial implements DataType: an empty keyspace.
func (k Keyed) Initial() State { return KeyedState(nil) }

// Apply implements DataType: it applies the inner operator to the named
// object's state and reports the inner value.
func (k Keyed) Apply(s State, op Operator) (State, Value) {
	cur, ok := s.(KeyedState)
	if !ok {
		panic(fmt.Sprintf("dtype: keyed state has type %T, want KeyedState", s))
	}
	o, ok := op.(KeyedOp)
	if !ok {
		panic(fmt.Sprintf("dtype: keyed data type does not support operator %T", op))
	}
	inner, ok := cur[o.Key]
	if !ok {
		inner = k.Inner.Initial()
	}
	next, v := k.Inner.Apply(inner, o.Op)
	out := make(KeyedState, len(cur)+1)
	for name, st := range cur {
		out[name] = st
	}
	out[o.Key] = next
	return out, v
}

// Commute implements Commuter: operators on distinct objects always
// commute; operators on the same object commute iff the inner type says
// so (false when it cannot tell — the conservative answer).
func (k Keyed) Commute(op1, op2 Operator) bool {
	o1, ok1 := op1.(KeyedOp)
	o2, ok2 := op2.(KeyedOp)
	if !ok1 || !ok2 {
		return false
	}
	if o1.Key != o2.Key {
		return true
	}
	if c, ok := k.Inner.(Commuter); ok {
		return c.Commute(o1.Op, o2.Op)
	}
	return false
}

// Oblivious implements ObliviousChecker: an operator's value cannot depend
// on operators addressing other objects; same-object pairs delegate to the
// inner type.
func (k Keyed) Oblivious(op1, op2 Operator) bool {
	o1, ok1 := op1.(KeyedOp)
	o2, ok2 := op2.(KeyedOp)
	if !ok1 || !ok2 {
		return false
	}
	if o1.Key != o2.Key {
		return true
	}
	if c, ok := k.Inner.(ObliviousChecker); ok {
		return c.Oblivious(o1.Op, o2.Op)
	}
	return false
}
