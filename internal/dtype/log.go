package dtype

import (
	"fmt"
	"strings"
)

// Log is an append-only log of string entries. Appends of different entries
// do not commute (order matters), making Log a worst case for the §10.3
// commutativity optimization and a good stress test for eventual
// serialization: all replicas must converge on the same entry order.
type Log struct{}

var (
	_ DataType         = Log{}
	_ Commuter         = Log{}
	_ ObliviousChecker = Log{}
)

// LogAppend appends Entry; its reportable value is the new length.
type LogAppend struct{ Entry string }

// LogRead returns the full log contents (value: string, entries joined
// by "|").
type LogRead struct{}

// LogLen returns the number of entries (value: int).
type LogLen struct{}

func (o LogAppend) String() string { return fmt.Sprintf("append(%s)", o.Entry) }
func (LogRead) String() string     { return "read" }
func (LogLen) String() string      { return "len" }

// LogState is the immutable canonical state of a Log.
type LogState struct{ joined string }

// Entries returns the log entries in order.
func (s LogState) Entries() []string {
	if s.joined == "" {
		return nil
	}
	return strings.Split(s.joined, "|")
}

func (s LogState) String() string { return "log[" + s.joined + "]" }

// Name implements DataType.
func (Log) Name() string { return "log" }

// Initial implements DataType.
func (Log) Initial() State { return LogState{} }

// Apply implements DataType.
func (Log) Apply(s State, op Operator) (State, Value) {
	cur, ok := s.(LogState)
	if !ok {
		panic(fmt.Sprintf("dtype: log state has type %T, want LogState", s))
	}
	switch o := op.(type) {
	case LogAppend:
		next := o.Entry
		if cur.joined != "" {
			next = cur.joined + "|" + o.Entry
		}
		ns := LogState{joined: next}
		return ns, len(ns.Entries())
	case LogRead:
		return cur, cur.joined
	case LogLen:
		return cur, len(cur.Entries())
	default:
		panic(fmt.Sprintf("dtype: log does not support operator %T", op))
	}
}

// Commute implements Commuter: appends never commute with each other
// (entry order is observable); queries commute with queries.
func (Log) Commute(op1, op2 Operator) bool {
	_, a1 := op1.(LogAppend)
	_, a2 := op2.(LogAppend)
	return !(a1 && a2)
}

// Oblivious implements ObliviousChecker: every operator's value observes
// appends (even LogAppend reports the length), so nothing is oblivious to
// an append; everything is oblivious to queries.
func (Log) Oblivious(op1, op2 Operator) bool {
	_, a2 := op2.(LogAppend)
	return !a2
}
