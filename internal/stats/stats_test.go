package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || !almostEq(s.Mean, 2.5) || !almostEq(s.Min, 1) || !almostEq(s.Max, 4) {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEq(s.P50, 2.5) {
		t.Fatalf("p50 = %v", s.P50)
	}
	wantStd := math.Sqrt(1.25)
	if !almostEq(s.StdDev, wantStd) {
		t.Fatalf("stddev = %v, want %v", s.StdDev, wantStd)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.125, 15}, {-1, 10}, {2, 50},
	}
	for _, tc := range cases {
		if got := Percentile(sorted, tc.p); !almostEq(got, tc.want) {
			t.Errorf("P%.3f = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile wrong")
	}
}

func TestFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	f := Fit(x, y)
	if !almostEq(f.Slope, 2) || !almostEq(f.Intercept, 3) || !almostEq(f.R2, 1) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestFitNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 3*xi+10+rng.NormFloat64())
	}
	f := Fit(x, y)
	if math.Abs(f.Slope-3) > 0.05 {
		t.Fatalf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R² = %v", f.R2)
	}
}

func TestFitPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatch":   func() { Fit([]float64{1}, []float64{1, 2}) },
		"too few":    func() { Fit([]float64{1}, []float64{1}) },
		"constant x": func() { Fit([]float64{2, 2}, []float64{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	f := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		a := float64(p1%101) / 100
		b := float64(p2%101) / 100
		if a > b {
			a, b = b, a
		}
		sorted := append([]float64(nil), xs...)
		sortFloats(sorted)
		pa, pb := Percentile(sorted, a), Percentile(sorted, b)
		return pa <= pb && pa >= s.Min && pb <= s.Max
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 20)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Fatalf("row = %q", lines[2])
	}
	// Column alignment: "value" column starts at the same offset in each row.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1.5") {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2.0:    "2",
		0.1234: "0.123",
		-3.10:  "-3.1",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
