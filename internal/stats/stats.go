// Package stats provides the small statistics and table-rendering toolkit
// used by the experiment harness: means, percentiles, linear regression
// (for the "almost linear" claims of §11.1), and aligned text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
	P999   float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // numeric guard
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    Percentile(sorted, 0.50),
		P95:    Percentile(sorted, 0.95),
		P99:    Percentile(sorted, 0.99),
		P999:   Percentile(sorted, 0.999),
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 1) of a sorted sample
// using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinFit is a least-squares line y = Slope·x + Intercept with the
// coefficient of determination R².
type LinFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// Fit computes the least-squares fit of y on x. It panics if the lengths
// differ or fewer than two points are given.
func Fit(x, y []float64) LinFit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Fit with %d x's and %d y's", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("stats: Fit needs at least two points")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: Fit with constant x")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R² = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinFit{Slope: slope, Intercept: intercept, R2: r2}
}

// Table renders aligned text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders floats compactly (3 significant decimals, no
// trailing zeros).
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
