package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// histOracle computes the exact p-quantile (ceiling rank, 1-based) of a
// sample — the definition Hist.Quantile approximates bucket-wise.
func histOracle(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p * float64(len(sorted)))
	if float64(rank) < p*float64(len(sorted)) || rank == 0 {
		rank++
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistQuantileBoundsVsOracle records random samples from several
// shapes (uniform, heavy-tailed, tiny, constant) and demands every
// reported quantile sit within the log-linear bucket error of the exact
// sorted-slice answer: never below it, and at most 1/2^histSubBits (plus
// one for integer rounding) above.
func TestHistQuantileBoundsVsOracle(t *testing.T) {
	shapes := []struct {
		name string
		gen  func(r *rand.Rand) int64
		n    int
	}{
		{"uniform", func(r *rand.Rand) int64 { return r.Int63n(1_000_000) }, 20000},
		{"heavy-tail", func(r *rand.Rand) int64 {
			v := int64(1 + r.Intn(100))
			for i := 0; i < r.Intn(6); i++ {
				v *= 10
			}
			return v
		}, 20000},
		{"tiny", func(r *rand.Rand) int64 { return r.Int63n(40) }, 17},
		{"constant", func(r *rand.Rand) int64 { return 12345 }, 1000},
	}
	quantiles := []float64{0, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for _, sh := range shapes {
		r := rand.New(rand.NewSource(7))
		h := NewHist()
		var all []int64
		for i := 0; i < sh.n; i++ {
			v := sh.gen(r)
			h.Record(v)
			all = append(all, v)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		if h.Count() != uint64(sh.n) {
			t.Fatalf("%s: count = %d, want %d", sh.name, h.Count(), sh.n)
		}
		if h.Min() != all[0] || h.Max() != all[len(all)-1] {
			t.Fatalf("%s: min/max = %d/%d, want %d/%d", sh.name, h.Min(), h.Max(), all[0], all[len(all)-1])
		}
		for _, p := range quantiles {
			got := h.Quantile(p)
			want := histOracle(all, p)
			if got < want {
				t.Fatalf("%s: Quantile(%v) = %d under-reports exact %d", sh.name, p, got, want)
			}
			slack := want/histSubCount + 1
			if got > want+slack {
				t.Fatalf("%s: Quantile(%v) = %d exceeds exact %d by more than the bucket error %d",
					sh.name, p, got, want, slack)
			}
		}
	}
}

// TestHistMergeExact checks Merge is exact: merging per-worker histograms
// must be indistinguishable from recording every stream into one histogram
// (the load lab's per-session shards rely on this).
func TestHistMergeExact(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	combined := NewHist()
	parts := make([]*Hist, 8)
	for i := range parts {
		parts[i] = NewHist()
		for j := 0; j < 3000; j++ {
			v := r.Int63n(10_000_000)
			parts[i].Record(v)
			combined.Record(v)
		}
	}
	merged := NewHist()
	merged.Merge(nil)       // no-op
	merged.Merge(NewHist()) // empty: no-op
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != combined.Count() {
		t.Fatalf("merged count = %d, want %d", merged.Count(), combined.Count())
	}
	if merged.Min() != combined.Min() || merged.Max() != combined.Max() {
		t.Fatalf("merged min/max = %d/%d, want %d/%d",
			merged.Min(), merged.Max(), combined.Min(), combined.Max())
	}
	if merged.Mean() != combined.Mean() {
		t.Fatalf("merged mean = %v, want %v", merged.Mean(), combined.Mean())
	}
	for _, p := range []float64{0.1, 0.5, 0.95, 0.99, 0.999, 1} {
		if m, c := merged.Quantile(p), combined.Quantile(p); m != c {
			t.Fatalf("merged Quantile(%v) = %d, combined = %d", p, m, c)
		}
	}
}

// TestHistEdges pins the corner cases: empty histograms, negatives
// clamping to 0, and the exact sub-histSubCount range.
func TestHistEdges(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read as all zeros")
	}
	h.Record(-5)
	if h.Count() != 1 || h.Quantile(1) != 0 {
		t.Fatalf("negative values must clamp to 0: count=%d q=%d", h.Count(), h.Quantile(1))
	}
	exact := NewHist()
	for v := int64(0); v < histSubCount; v++ {
		exact.Record(v)
	}
	for _, p := range []float64{0.25, 0.5, 1} {
		var all []int64
		for v := int64(0); v < histSubCount; v++ {
			all = append(all, v)
		}
		if got, want := exact.Quantile(p), histOracle(all, p); got != want {
			t.Fatalf("values below %d must be exact: Quantile(%v) = %d, want %d", histSubCount, p, got, want)
		}
	}
}

// TestHistRecordDoesNotAllocate pins the zero-allocation record path: the
// open-loop generator calls Record once per operation at the offered rate,
// and an allocating path would turn the measurement into a GC benchmark.
func TestHistRecordDoesNotAllocate(t *testing.T) {
	h := NewHist()
	v := int64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	}); allocs != 0 {
		t.Fatalf("Record allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkHistRecord measures the record hot path; run with -benchmem —
// the 0 B/op, 0 allocs/op columns are the pinned claim.
func BenchmarkHistRecord(b *testing.B) {
	h := NewHist()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 1009)
	}
}

// BenchmarkHistMerge measures merging two full histograms.
func BenchmarkHistMerge(b *testing.B) {
	a, c := NewHist(), NewHist()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		a.Record(r.Int63n(1e9))
		c.Record(r.Int63n(1e9))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := *a // copy, so the merge target does not accumulate across iterations
		dst.Merge(c)
	}
}
