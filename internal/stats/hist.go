package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Hist is an HDR-style latency histogram: log-linear buckets giving a
// bounded RELATIVE quantile error (at most 1/2^histSubBits ≈ 1.6%) over
// the whole non-negative int64 range, with a constant memory footprint and
// an allocation-free record path. It exists for the load lab (DESIGN.md
// §11): an open-loop generator records one value per operation at
// arbitrary rates, workers keep private histograms, and the per-worker
// histograms Merge into the run's distribution — a sorted-slice percentile
// over millions of samples would allocate per op and sort at read time.
//
// Values are unit-agnostic int64s (the load lab records nanoseconds).
// Negative values clamp to 0. A Hist is NOT goroutine-safe: share one per
// goroutine and Merge, or wrap it in a mutex.
type Hist struct {
	counts [histBuckets]uint64
	total  uint64
	sum    float64 // running sum for Mean (float: avoids int64 overflow at ns scale)
	min    int64
	max    int64
}

// Log-linear bucketing: values below histSubCount are exact; above, each
// power-of-two range is split into histSubCount linear sub-buckets, so a
// bucket's width is at most its lower bound / histSubCount.
const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits
	histRows     = 64 - histSubBits + 1 // row 0 exact + one row per exponent
	histBuckets  = histRows * histSubCount
)

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{min: -1}
}

// histIndex maps a value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // ≥ histSubBits
	shift := uint(exp - histSubBits)
	row := exp - histSubBits + 1
	sub := int(u>>shift) & (histSubCount - 1)
	return row*histSubCount + sub
}

// histUpper is the largest value a bucket holds — the value Quantile
// reports for samples in it (quantiles never under-report).
func histUpper(idx int) int64 {
	row := idx / histSubCount
	sub := idx % histSubCount
	if row == 0 {
		return int64(sub)
	}
	shift := uint(row - 1)
	lower := (int64(histSubCount) + int64(sub)) << shift
	return lower + (int64(1) << shift) - 1
}

// Record adds one observation. It performs no allocation (the load lab's
// hot path pins this with testing.AllocsPerRun).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	h.total++
	h.sum += float64(v)
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h (o is unchanged). Merging is exact: the combined
// histogram is identical to recording both sample streams into one.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if h.min < 0 || (o.min >= 0 && o.min < h.min) {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total }

// Min returns the smallest recorded value (0 when empty).
func (h *Hist) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns an upper bound for the p-quantile (0 ≤ p ≤ 1): the
// bucket upper bound of the ⌈p·N⌉-th smallest observation, within the
// relative bucket error of the true value and never below it. Empty
// histograms return 0.
func (h *Hist) Quantile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	rank := uint64(p * float64(h.total))
	if float64(rank) < p*float64(h.total) || rank == 0 {
		rank++ // ceiling, and 1-based
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			u := histUpper(i)
			if u > h.max {
				u = h.max // the top bucket may extend past the true max
			}
			return u
		}
	}
	return h.max
}

// Quantiles is the standard latency read-out of a Hist, in the recorded
// unit: the load-lab tables and the E10–E15 report plumbing print one of
// these per measured window.
type Quantiles struct {
	N                   uint64
	P50, P95, P99, P999 int64
	Max                 int64
}

// Quantiles returns the standard percentile set.
func (h *Hist) Quantiles() Quantiles {
	return Quantiles{
		N:    h.total,
		P50:  h.Quantile(0.50),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
		Max:  h.Max(),
	}
}

// MsString renders nanosecond-recorded quantiles as milliseconds, the
// form the experiment tables print.
func (q Quantiles) MsString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p50=%.1fms p95=%.1fms p99=%.1fms p99.9=%.1fms max=%.1fms (n=%d)",
		float64(q.P50)/1e6, float64(q.P95)/1e6, float64(q.P99)/1e6,
		float64(q.P999)/1e6, float64(q.Max)/1e6, q.N)
	return b.String()
}
