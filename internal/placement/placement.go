// Package placement maps keyspace shards onto fleet members. It is the
// layer above internal/ring: the ring decides which SHARD owns an object,
// the placement decides which MEMBERS host each shard's replicas. Like the
// ring it is deterministic and purely functional — the placement for
// (shards, replicas, members) is always the same table, so every member and
// every client of a deployment computes identical shard→member assignments
// from nothing but three integers, with no coordination service.
//
// The construction is incremental by member count: the base placement at
// members == replicas puts replica slot i of every shard on member i (the
// legacy all-shards-everywhere topology, so a fleet of exactly R members
// behaves byte-for-byte like the pre-placement deployments), and each
// additional member steals its fair share of slots from the most-loaded
// members, one slot at a time. That gives the three properties the fleet
// needs by construction:
//
//   - every shard has exactly `replicas` hosts, all distinct;
//   - member loads are balanced within ±1 slot;
//   - growing the member set moves at most ceil(shards·replicas/members)
//     assignments — the minimal-movement property that keeps a fleet
//     resize from re-sharding the world (mirroring the ring's arc-stealing
//     incrementality one level up).
package placement

import (
	"fmt"
	"sort"

	"esds/internal/ring"
)

// Placement is an immutable shard→member assignment table.
type Placement struct {
	shards   int
	replicas int
	members  int
	// assign[shard][slot] = member hosting replica `slot` of `shard`.
	assign [][]int
}

// Assignment is one shard's row of the table: the members hosting its
// replica slots, in slot order. It is the exchange form of a placement
// epoch (DESIGN.md §13).
type Assignment struct {
	Shard   int
	Members []int
}

// New returns the placement for the given geometry. It panics when
// shards < 1, replicas < 1, or members < replicas (a shard needs
// `replicas` distinct hosts).
func New(shards, replicas, members int) *Placement {
	if shards < 1 {
		panic(fmt.Sprintf("placement: invalid shard count %d", shards))
	}
	if replicas < 1 {
		panic(fmt.Sprintf("placement: invalid replica count %d", replicas))
	}
	if members < replicas {
		panic(fmt.Sprintf("placement: %d members cannot host %d replicas per shard", members, replicas))
	}
	p := &Placement{shards: shards, replicas: replicas, members: replicas}
	p.assign = make([][]int, shards)
	for s := range p.assign {
		row := make([]int, replicas)
		for k := range row {
			row[k] = k
		}
		p.assign[s] = row
	}
	for m := replicas + 1; m <= members; m++ {
		p = p.growOne()
	}
	return p
}

// growOne adds one member, stealing its fair share of slots from the
// most-loaded members. Victims lose one slot at a time from the current
// maximum, so the surviving members stay balanced; the newcomer stops at
// floor(total/members), so the whole table stays within ±1. Only stolen
// slots change hands — members never trade slots among themselves.
func (p *Placement) growOne() *Placement {
	q := &Placement{shards: p.shards, replicas: p.replicas, members: p.members + 1}
	q.assign = make([][]int, p.shards)
	for s, row := range p.assign {
		q.assign[s] = append([]int(nil), row...)
	}
	newbie := q.members - 1
	want := (p.shards * p.replicas) / q.members
	for got := 0; got < want; got++ {
		if !q.stealOne(newbie) {
			break // no eligible slot anywhere: every shard already hosts the newcomer
		}
	}
	return q
}

// stealOne moves one slot from the most-loaded member (lowest index on
// ties) to `to`, skipping shards that already host `to` (a shard's replica
// hosts must be distinct). Within a victim, the slot with the largest
// placement hash goes first — a deterministic choice that spreads steals
// across shards instead of clustering them at low indexes.
func (q *Placement) stealOne(to int) bool {
	loads := q.loads()
	type victim struct{ load, member int }
	order := make([]victim, 0, q.members)
	for m := 0; m < q.members; m++ {
		if m != to {
			order = append(order, victim{loads[m], m})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].load != order[j].load {
			return order[i].load > order[j].load
		}
		return order[i].member < order[j].member
	})
	for _, v := range order {
		bestS, bestK := -1, -1
		var bestH uint64
		for s, row := range q.assign {
			if q.hostsMember(s, to) {
				continue
			}
			for k, m := range row {
				if m != v.member {
					continue
				}
				h := ring.Hash(fmt.Sprintf("place-%d-%d-%d", to, s, k))
				if bestS < 0 || h > bestH {
					bestS, bestK, bestH = s, k, h
				}
			}
		}
		if bestS >= 0 {
			q.assign[bestS][bestK] = to
			return true
		}
	}
	return false
}

func (q *Placement) hostsMember(shard, member int) bool {
	for _, m := range q.assign[shard] {
		if m == member {
			return true
		}
	}
	return false
}

func (q *Placement) loads() []int {
	loads := make([]int, q.members)
	for _, row := range q.assign {
		for _, m := range row {
			loads[m]++
		}
	}
	return loads
}

// Shards returns the shard count the placement was built for.
func (p *Placement) Shards() int { return p.shards }

// Replicas returns the per-shard replica count.
func (p *Placement) Replicas() int { return p.replicas }

// Members returns the fleet size.
func (p *Placement) Members() int { return p.members }

// Member returns the member hosting replica `slot` of `shard`.
func (p *Placement) Member(shard, slot int) int { return p.assign[shard][slot] }

// Hosts returns the members hosting `shard`, in replica-slot order.
func (p *Placement) Hosts(shard int) []int {
	return append([]int(nil), p.assign[shard]...)
}

// Slots returns the replica slots of `shard` hosted by `member` — the
// per-shard LocalReplicas list a member feeds core.KeyspaceConfig. Empty
// when the member does not host the shard.
func (p *Placement) Slots(shard, member int) []int {
	var out []int
	for k, m := range p.assign[shard] {
		if m == member {
			out = append(out, k)
		}
	}
	return out
}

// ShardsOf returns the shards `member` hosts, ascending — the member's
// resident set, and its gossip subscription.
func (p *Placement) ShardsOf(member int) []int {
	var out []int
	for s := range p.assign {
		if p.hostsMember(s, member) {
			out = append(out, s)
		}
	}
	return out
}

// Load returns the number of replica slots assigned to `member`.
func (p *Placement) Load(member int) int { return p.loads()[member] }

// Table returns every shard's assignment row — the explicit epoch form.
func (p *Placement) Table() []Assignment {
	out := make([]Assignment, p.shards)
	for s := range p.assign {
		out[s] = Assignment{Shard: s, Members: p.Hosts(s)}
	}
	return out
}

// Grow returns the placement with `members` total members (≥ the current
// count). Because construction is incremental by member, Grow(p, m) is
// identical to New(shards, replicas, m) — growth is a pure function of the
// geometry, never of history.
func (p *Placement) Grow(members int) *Placement {
	if members < p.members {
		panic(fmt.Sprintf("placement: cannot shrink %d members to %d", p.members, members))
	}
	q := p
	for q.members < members {
		q = q.growOne()
	}
	return q
}

// Extend returns the placement with `shards` total shards (≥ the current
// count), composing with keyspace Resize: existing assignments are kept
// verbatim — a resize NEVER moves a live shard between members — and each
// new shard's replica slots go to the least-loaded members (lowest index
// on ties), keeping balance. The result is deterministic given the resize
// sequence, so every member applying the same Resize computes the same
// extended placement.
func (p *Placement) Extend(shards int) *Placement {
	if shards < p.shards {
		panic(fmt.Sprintf("placement: cannot shrink %d shards to %d", p.shards, shards))
	}
	q := &Placement{shards: shards, replicas: p.replicas, members: p.members}
	q.assign = make([][]int, shards)
	for s, row := range p.assign {
		q.assign[s] = append([]int(nil), row...)
	}
	for s := p.shards; s < shards; s++ {
		loads := q.loadsPartial(s)
		row := make([]int, q.replicas)
		for k := range row {
			best := -1
			for m := 0; m < q.members; m++ {
				if intsContain(row[:k], m) {
					continue
				}
				if best < 0 || loads[m] < loads[best] {
					best = m
				}
			}
			row[k] = best
			loads[best]++
		}
		q.assign[s] = row
	}
	return q
}

// loadsPartial counts loads over the first `upTo` shards (the rows already
// assigned while Extend fills the table).
func (q *Placement) loadsPartial(upTo int) []int {
	loads := make([]int, q.members)
	for s := 0; s < upTo; s++ {
		for _, m := range q.assign[s] {
			loads[m]++
		}
	}
	return loads
}

func intsContain(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Moved counts the (shard, slot) assignments that changed member between
// two placements, over the shards and slots they share — the movement cost
// of a fleet or keyspace change.
func Moved(old, new *Placement) int {
	moved := 0
	shards := old.shards
	if new.shards < shards {
		shards = new.shards
	}
	for s := 0; s < shards; s++ {
		slots := len(old.assign[s])
		if len(new.assign[s]) < slots {
			slots = len(new.assign[s])
		}
		for k := 0; k < slots; k++ {
			if old.assign[s][k] != new.assign[s][k] {
				moved++
			}
		}
	}
	return moved
}
