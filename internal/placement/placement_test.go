package placement

import (
	"reflect"
	"testing"
)

// geometries sweeps the shapes the properties must hold for: replica
// counts 1–3, member counts up to well past the shard count, shard counts
// from tiny to dozens.
func geometries() [][3]int {
	var out [][3]int
	for _, shards := range []int{1, 2, 3, 4, 6, 8, 13, 32} {
		for _, replicas := range []int{1, 2, 3} {
			for members := replicas; members <= 3*shards+replicas; members++ {
				out = append(out, [3]int{shards, replicas, members})
			}
		}
	}
	return out
}

func TestBaseMatchesLegacyTopology(t *testing.T) {
	// At members == replicas the placement must be exactly the historical
	// topology: member i hosts replica slot i of every shard.
	p := New(5, 3, 3)
	for s := 0; s < 5; s++ {
		for k := 0; k < 3; k++ {
			if p.Member(s, k) != k {
				t.Fatalf("base placement: shard %d slot %d on member %d, want %d", s, k, p.Member(s, k), k)
			}
		}
	}
}

func TestEveryShardHasExactlyReplicasDistinctHosts(t *testing.T) {
	for _, g := range geometries() {
		p := New(g[0], g[1], g[2])
		for s := 0; s < g[0]; s++ {
			hosts := p.Hosts(s)
			if len(hosts) != g[1] {
				t.Fatalf("geometry %v: shard %d has %d hosts, want %d", g, s, len(hosts), g[1])
			}
			seen := make(map[int]bool)
			for _, m := range hosts {
				if m < 0 || m >= g[2] {
					t.Fatalf("geometry %v: shard %d hosted by out-of-range member %d", g, s, m)
				}
				if seen[m] {
					t.Fatalf("geometry %v: shard %d hosted twice by member %d", g, s, m)
				}
				seen[m] = true
			}
		}
	}
}

func TestLoadsBalancedWithinOne(t *testing.T) {
	for _, g := range geometries() {
		shards, replicas, members := g[0], g[1], g[2]
		if members > shards*replicas {
			// More members than slots: some members are legitimately empty,
			// and balance means no member holds 2 while another holds 0.
			// The ±1 claim below covers that case too, so fall through.
			_ = members
		}
		p := New(shards, replicas, members)
		min, max := shards*replicas, 0
		for m := 0; m < members; m++ {
			l := p.Load(m)
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if max-min > 1 {
			t.Fatalf("geometry %v: loads spread %d..%d exceeds ±1", g, min, max)
		}
	}
}

func TestGrowthMovesAtMostFairShare(t *testing.T) {
	for _, g := range geometries() {
		shards, replicas, members := g[0], g[1], g[2]
		old := New(shards, replicas, members)
		grown := New(shards, replicas, members+1)
		moved := Moved(old, grown)
		bound := (shards*replicas + members) / (members + 1) // ceil(S·R/(M+1))
		if moved > bound {
			t.Fatalf("geometry %v → %d members moved %d assignments, bound %d", g, members+1, moved, bound)
		}
		// Movement must be real stealing: every changed slot now belongs to
		// the new member; old members never trade slots among themselves.
		for s := 0; s < shards; s++ {
			for k := 0; k < replicas; k++ {
				if old.Member(s, k) != grown.Member(s, k) && grown.Member(s, k) != members {
					t.Fatalf("geometry %v: shard %d slot %d moved %d→%d, not to the new member %d",
						g, s, k, old.Member(s, k), grown.Member(s, k), members)
				}
			}
		}
	}
}

func TestDeterministicAndGrowEqualsNew(t *testing.T) {
	a := New(8, 3, 7)
	b := New(8, 3, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("New is not deterministic")
	}
	// Growth is a pure function of the geometry: growing 3→7 one member at
	// a time lands on exactly New(8, 3, 7).
	c := New(8, 3, 3).Grow(7)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("Grow(7) differs from New(…, 7)")
	}
}

func TestExtendKeepsExistingAssignmentsAndBalance(t *testing.T) {
	for _, g := range [][3]int{{4, 3, 5}, {2, 2, 6}, {8, 3, 4}, {3, 1, 3}} {
		p := New(g[0], g[1], g[2])
		q := p.Extend(g[0] + 3)
		if Moved(p, q) != 0 {
			t.Fatalf("geometry %v: Extend moved %d existing assignments", g, Moved(p, q))
		}
		min, max := q.shards*q.replicas, 0
		for m := 0; m < q.members; m++ {
			l := q.Load(m)
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if max-min > 1 {
			t.Fatalf("geometry %v extended: loads spread %d..%d exceeds ±1", g, min, max)
		}
		for s := g[0]; s < q.Shards(); s++ {
			hosts := q.Hosts(s)
			seen := make(map[int]bool)
			for _, m := range hosts {
				if seen[m] {
					t.Fatalf("extended shard %d hosted twice by member %d", s, m)
				}
				seen[m] = true
			}
			if len(hosts) != g[1] {
				t.Fatalf("extended shard %d has %d hosts, want %d", s, len(hosts), g[1])
			}
		}
	}
}

func TestAccessorsAgree(t *testing.T) {
	p := New(6, 2, 5)
	for m := 0; m < p.Members(); m++ {
		load := 0
		for _, s := range p.ShardsOf(m) {
			slots := p.Slots(s, m)
			if len(slots) == 0 {
				t.Fatalf("ShardsOf(%d) lists shard %d but Slots is empty", m, s)
			}
			for _, k := range slots {
				if p.Member(s, k) != m {
					t.Fatalf("Slots(%d, %d) lists slot %d but Member says %d", s, m, k, p.Member(s, k))
				}
			}
			load += len(slots)
		}
		if load != p.Load(m) {
			t.Fatalf("member %d: ShardsOf/Slots count %d, Load says %d", m, load, p.Load(m))
		}
	}
	table := p.Table()
	if len(table) != p.Shards() {
		t.Fatalf("Table has %d rows, want %d", len(table), p.Shards())
	}
	for _, a := range table {
		if !reflect.DeepEqual(a.Members, p.Hosts(a.Shard)) {
			t.Fatalf("Table row %d disagrees with Hosts", a.Shard)
		}
	}
}

func TestInvalidGeometriesPanic(t *testing.T) {
	for _, g := range [][3]int{{0, 1, 1}, {1, 0, 1}, {2, 3, 2}} {
		g := g
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("geometry %v did not panic", g)
				}
			}()
			New(g[0], g[1], g[2])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("shrinking Grow did not panic")
			}
		}()
		New(2, 2, 4).Grow(3)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("shrinking Extend did not panic")
			}
		}()
		New(4, 2, 2).Extend(2)
	}()
}
