package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30*Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*Millisecond, func() { got = append(got, 2) })
	s.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order = %v", got)
	}
	if s.Now() != Time(30*Millisecond) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*Millisecond, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var times []Time
	s.Schedule(time10(), func() {
		times = append(times, s.Now())
		s.Schedule(time10(), func() {
			times = append(times, s.Now())
		})
	})
	s.Run(0)
	if len(times) != 2 || times[0] != Time(10*Millisecond) || times[1] != Time(20*Millisecond) {
		t.Fatalf("times = %v", times)
	}
}

func time10() Duration { return 10 * Millisecond }

func TestScheduleAt(t *testing.T) {
	s := New(1)
	fired := false
	s.ScheduleAt(Time(7*Millisecond), func() { fired = true })
	s.Run(0)
	if !fired || s.Now() != Time(7*Millisecond) {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("ScheduleAt in the past should panic")
		}
	}()
	s.ScheduleAt(Time(1*Millisecond), func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestNilFnPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("nil fn should panic")
		}
	}()
	s.Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	h := s.Schedule(5*Millisecond, func() { fired = true })
	if !h.Cancel() {
		t.Fatal("first Cancel returned false")
	}
	if h.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	s.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling after firing is a no-op returning false.
	h2 := s.Schedule(1*Millisecond, func() {})
	s.Run(0)
	if h2.Cancel() {
		t.Fatal("Cancel after firing returned true")
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	count := 0
	stop := s.Every(10*Millisecond, func() { count++ })
	s.RunUntil(Time(55 * Millisecond))
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	stop()
	s.RunUntil(Time(200 * Millisecond))
	if count != 5 {
		t.Fatalf("ticks after stop = %d", count)
	}
	if s.Now() != Time(200*Millisecond) {
		t.Fatalf("RunUntil did not advance clock: %v", s.Now())
	}
}

func TestEveryStopFromWithinTick(t *testing.T) {
	s := New(1)
	count := 0
	var stop func()
	stop = s.Every(Millisecond, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	s.Run(0)
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
}

func TestEveryInvalidPeriodPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("non-positive period should panic")
		}
	}()
	s.Every(0, func() {})
}

func TestRunMaxEvents(t *testing.T) {
	s := New(1)
	for i := 0; i < 10; i++ {
		s.Schedule(Duration(i)*Millisecond, func() {})
	}
	if n := s.Run(4); n != 4 {
		t.Fatalf("Run(4) executed %d", n)
	}
	if s.Pending() != 6 {
		t.Fatalf("pending = %d", s.Pending())
	}
	if n := s.Run(0); n != 6 {
		t.Fatalf("Run(0) executed %d", n)
	}
	if s.EventsExecuted() != 10 {
		t.Fatalf("total = %d", s.EventsExecuted())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New(1)
	fired := 0
	s.Schedule(10*Millisecond, func() { fired++ })
	s.Schedule(10*Millisecond+1, func() { fired++ })
	s.RunUntil(Time(10 * Millisecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (deadline inclusive)", fired)
	}
	s.Run(0)
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	s := New(1)
	s.RunFor(5 * Millisecond)
	s.RunFor(5 * Millisecond)
	if s.Now() != Time(10*Millisecond) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int {
		s := New(seed)
		var out []int
		for i := 0; i < 50; i++ {
			i := i
			d := Duration(s.Rand().Intn(100)) * Millisecond
			s.Schedule(d, func() { out = append(out, i) })
		}
		s.Run(0)
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if FromStd(3*time.Millisecond) != 3*Millisecond {
		t.Error("FromStd wrong")
	}
	if (2 * Second).Std() != 2*time.Second {
		t.Error("Std wrong")
	}
	if (1500 * Microsecond).String() != "1.5ms" {
		t.Errorf("String = %q", (1500 * Microsecond).String())
	}
	tm := Time(0).Add(5 * Millisecond)
	if tm.Sub(Time(2*Millisecond)) != 3*Millisecond {
		t.Error("Sub wrong")
	}
}
