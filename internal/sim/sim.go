// Package sim is a deterministic discrete-event simulator with a virtual
// clock. It is the substrate for the timed executions of §9 of Fekete et
// al.: events are annotated with times, time advances to infinity, and the
// timing assumptions (message delivery within d, gossip every g) become
// scheduled events.
//
// Determinism: events at equal times fire in scheduling order (a strictly
// increasing sequence number breaks ties), and all randomness is injected
// via explicit seeds, so a run is a pure function of its inputs. This is
// what lets the experiment harness reproduce every table from a seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual instant in microseconds since the start of the run.
type Time int64

// Duration is a virtual duration in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000
	Second      Duration = 1000 * 1000
)

// FromStd converts a time.Duration to a virtual Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Microseconds()) }

// Std converts a virtual Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// String renders a Duration using the standard library formatting.
func (d Duration) String() string { return d.Std().String() }

// Add offsets a Time by a Duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration between two Times.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// String renders a Time as an offset from the run start.
func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among same-time events
	fn   func()
	idx  int // heap index
	dead bool
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. It is not safe for concurrent use:
// all event handlers run sequentially on the caller's goroutine, which is
// precisely what makes runs deterministic.
type Sim struct {
	now    Time
	queue  eventQueue
	nextID uint64
	rng    *rand.Rand
	events uint64 // total events executed
}

// New returns a simulator with its clock at zero, seeded for any
// rng-consuming components built on top.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// EventsExecuted returns the number of events run so far.
func (s *Sim) EventsExecuted() uint64 { return s.events }

// Pending returns the number of events currently scheduled.
func (s *Sim) Pending() int { return len(s.queue) }

// Handle allows a scheduled event to be cancelled.
type Handle struct{ e *event }

// Cancel prevents the event from firing. Cancelling a fired or already
// cancelled event is a no-op. It reports whether the event was live.
func (h Handle) Cancel() bool {
	if h.e == nil || h.e.dead {
		return false
	}
	h.e.dead = true
	h.e.fn = nil
	return true
}

// Schedule runs fn at now+delay. A negative delay panics: the virtual clock
// never goes backwards.
func (s *Sim) Schedule(delay Duration, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &event{at: s.now.Add(delay), seq: s.nextID, fn: fn}
	s.nextID++
	heap.Push(&s.queue, e)
	return Handle{e: e}
}

// ScheduleAt runs fn at the absolute virtual time at (>= Now).
func (s *Sim) ScheduleAt(at Time, fn func()) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) is in the past (now %v)", at, s.now))
	}
	return s.Schedule(at.Sub(s.now), fn)
}

// Every schedules fn at now+period, now+2·period, ... until the returned
// stop function is called. The period must be positive. This implements the
// paper's gossip timing assumption: at least one send every g.
func (s *Sim) Every(period Duration, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			s.Schedule(period, tick)
		}
	}
	s.Schedule(period, tick)
	return func() { stopped = true }
}

// Step executes the next event, advancing the clock to its time. It reports
// whether an event was executed (false when the queue is empty).
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.dead {
			continue
		}
		if e.at < s.now {
			panic("sim: time went backwards")
		}
		s.now = e.at
		s.events++
		e.dead = true
		fn := e.fn
		e.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or maxEvents events have run
// (maxEvents <= 0: unlimited). It returns the number of events executed.
func (s *Sim) Run(maxEvents uint64) uint64 {
	start := s.events
	for maxEvents == 0 || s.events-start < maxEvents {
		if !s.Step() {
			break
		}
	}
	return s.events - start
}

// RunUntil executes events with time ≤ deadline. Events scheduled at
// exactly the deadline do fire; the clock finishes at min(deadline, last
// event time) and is then advanced to deadline.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.queue) > 0 {
		// Peek without popping.
		next := s.queue[0]
		if next.dead {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for a virtual duration from the current time.
func (s *Sim) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }
