package ops

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"esds/internal/dtype"
	"esds/internal/order"
)

func id(c string, n uint64) ID { return ID{Client: c, Seq: n} }

func TestIDStringAndLess(t *testing.T) {
	a := id("a", 1)
	b := id("a", 2)
	c := id("b", 0)
	if a.String() != "a:1" {
		t.Fatalf("String = %q", a.String())
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("seq ordering wrong")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("client ordering wrong")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
}

func TestNewNormalizesPrev(t *testing.T) {
	x := New(dtype.CtrRead{}, id("c", 3),
		[]ID{id("c", 2), id("a", 9), id("c", 2), id("c", 3)}, false)
	if len(x.Prev) != 2 {
		t.Fatalf("prev = %v, want deduped 2 without self", x.Prev)
	}
	if !x.Prev[0].Less(x.Prev[1]) {
		t.Fatal("prev not sorted")
	}
	if x.HasPrev(id("c", 3)) {
		t.Fatal("self-reference not dropped")
	}
	if !x.HasPrev(id("a", 9)) || !x.HasPrev(id("c", 2)) || x.HasPrev(id("z", 1)) {
		t.Fatal("HasPrev wrong")
	}
}

func TestOperationString(t *testing.T) {
	x := New(dtype.CtrAdd{N: 2}, id("c", 1), []ID{id("c", 0)}, true)
	want := "c:1=add(2)!{prev:c:0}"
	if got := x.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	y := New(dtype.CtrRead{}, id("d", 4), nil, false)
	if got := y.String(); got != "d:4=read" {
		t.Fatalf("String = %q", got)
	}
}

func TestCSC(t *testing.T) {
	a := New(dtype.CtrAdd{N: 1}, id("c", 0), nil, false)
	b := New(dtype.CtrAdd{N: 2}, id("c", 1), []ID{a.ID}, false)
	c := New(dtype.CtrRead{}, id("c", 2), []ID{a.ID, b.ID}, true)
	r := CSC([]Operation{a, b, c})
	for _, p := range [][2]ID{{a.ID, b.ID}, {a.ID, c.ID}, {b.ID, c.ID}} {
		if !r.Has(p[0], p[1]) {
			t.Errorf("CSC missing (%v,%v)", p[0], p[1])
		}
	}
	if r.Len() != 3 {
		t.Errorf("CSC has %d pairs, want 3", r.Len())
	}
	// Lemma 2.4: X ⊆ Y ⇒ CSC(X) ⊆ CSC(Y).
	if !CSC([]Operation{a, b, c}).Contains(CSC([]Operation{a, b})) {
		t.Error("Lemma 2.4 violated")
	}
}

func TestOutcomeAndVal(t *testing.T) {
	dt := dtype.Counter{}
	a := New(dtype.CtrAdd{N: 1}, id("c", 0), nil, false)
	d := New(dtype.CtrDouble{}, id("c", 1), nil, false)
	r := New(dtype.CtrRead{}, id("c", 2), nil, false)
	seq := []Operation{a, d, r}
	if got := Outcome(dt, dt.Initial(), seq); got != int64(2) {
		t.Fatalf("outcome = %v, want 2", got)
	}
	if got := Val(dt, dt.Initial(), r, seq); got != int64(2) {
		t.Fatalf("val(read) = %v, want 2", got)
	}
	if got := Val(dt, dt.Initial(), a, seq); got != "ok" {
		t.Fatalf("val(add) = %v", got)
	}
	// Val from a non-initial σ.
	if got := Val(dt, int64(10), r, seq); got != int64(22) {
		t.Fatalf("val from σ=10 = %v, want 22", got)
	}
}

func TestValPanicsOnAbsentOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	dt := dtype.Counter{}
	a := New(dtype.CtrAdd{N: 1}, id("c", 0), nil, false)
	ghost := New(dtype.CtrRead{}, id("g", 9), nil, false)
	Val(dt, dt.Initial(), ghost, []Operation{a})
}

func TestValSetUnconstrained(t *testing.T) {
	// add(1) and double unordered; read ordered after both: the read can see
	// 2·(0+1)=2 or (2·0)+1=1.
	dt := dtype.Counter{}
	a := New(dtype.CtrAdd{N: 1}, id("c", 0), nil, false)
	d := New(dtype.CtrDouble{}, id("c", 1), nil, false)
	r := New(dtype.CtrRead{}, id("c", 2), []ID{a.ID, d.ID}, false)
	xs := []Operation{a, d, r}
	po := CSC(xs)
	vs, err := ValSet(dt, dt.Initial(), r, xs, po, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("valset = %v, want {1, 2}", vs)
	}
	if _, ok := vs["1"]; !ok {
		t.Errorf("valset missing 1: %v", vs)
	}
	if _, ok := vs["2"]; !ok {
		t.Errorf("valset missing 2: %v", vs)
	}
}

// Lemma 2.6: a larger order can only shrink the valset.
func TestLemma26MoreOrderShrinksValset(t *testing.T) {
	dt := dtype.Counter{}
	a := New(dtype.CtrAdd{N: 1}, id("c", 0), nil, false)
	d := New(dtype.CtrDouble{}, id("c", 1), nil, false)
	r := New(dtype.CtrRead{}, id("c", 2), []ID{a.ID, d.ID}, false)
	xs := []Operation{a, d, r}
	weak := CSC(xs)
	strong := weak.Clone()
	strong.Add(a.ID, d.ID) // now totally ordered
	vsWeak, err := ValSet(dt, dt.Initial(), r, xs, weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	vsStrong, err := ValSet(dt, dt.Initial(), r, xs, strong, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vsStrong) != 1 {
		t.Fatalf("totally ordered valset = %v, want singleton", vsStrong)
	}
	for k := range vsStrong {
		if _, ok := vsWeak[k]; !ok {
			t.Fatalf("strong valset %v not a subset of weak %v", vsStrong, vsWeak)
		}
	}
}

// Lemma 2.5 (at the ops level): valset is nonempty for any partial order.
func TestLemma25ValsetNonempty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	dt := dtype.Set{}
	elems := []string{"p", "q"}
	f := func(picks []uint8, deps []uint8) bool {
		n := len(picks)
		if n == 0 {
			return true
		}
		if n > 5 {
			n = 5
		}
		xs := make([]Operation, 0, n)
		for i := 0; i < n; i++ {
			var op dtype.Operator
			switch picks[i] % 3 {
			case 0:
				op = dtype.SetAdd{Elem: elems[int(picks[i]/3)%2]}
			case 1:
				op = dtype.SetRemove{Elem: elems[int(picks[i]/3)%2]}
			default:
				op = dtype.SetSize{}
			}
			var prev []ID
			if i > 0 && len(deps) > i && deps[i]%2 == 0 {
				prev = []ID{xs[int(deps[i]/2)%i].ID}
			}
			xs = append(xs, New(op, id("c", uint64(i)), prev, false))
		}
		po := CSC(xs).TransitiveClosure()
		for _, x := range xs {
			vs, err := ValSet(dt, dt.Initial(), x, xs, po, 0)
			if err != nil || len(vs) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Lemma 2.7 (specialization): if po totally orders X and every member of X
// precedes every non-member, then each x∈X has a singleton valset whose
// element is val over that total order.
func TestLemma27PrefixDeterminesVal(t *testing.T) {
	dt := dtype.Counter{}
	a := New(dtype.CtrAdd{N: 1}, id("c", 0), nil, false)
	d := New(dtype.CtrDouble{}, id("c", 1), nil, false)
	r := New(dtype.CtrRead{}, id("c", 2), nil, false)
	xs := []Operation{a, d, r}
	po := order.TotalOrderFromSequence([]ID{a.ID, d.ID}) // a < d, both < nothing else
	po.Add(a.ID, r.ID)
	po.Add(d.ID, r.ID) // r after the prefix
	vsA, err := ValSet(dt, dt.Initial(), a, xs, po, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vsA) != 1 {
		t.Fatalf("valset(a) = %v, want singleton", vsA)
	}
	vsR, err := ValSet(dt, dt.Initial(), r, xs, po, 0)
	if err != nil {
		t.Fatal(err)
	}
	// r is last and the prefix is total: singleton 2·(0+1)=2.
	if len(vsR) != 1 {
		t.Fatalf("valset(r) = %v, want singleton", vsR)
	}
	if _, ok := vsR["2"]; !ok {
		t.Fatalf("valset(r) = %v, want {2}", vsR)
	}
}

func TestValSetErrors(t *testing.T) {
	dt := dtype.Counter{}
	a := New(dtype.CtrAdd{N: 1}, id("c", 0), nil, false)
	ghost := New(dtype.CtrRead{}, id("g", 9), nil, false)
	if _, err := ValSet(dt, dt.Initial(), ghost, []Operation{a}, order.NewRelation[ID](), 0); err == nil {
		t.Error("ValSet of absent op should fail")
	}
	cyc := order.NewRelation[ID]()
	b := New(dtype.CtrAdd{N: 2}, id("c", 1), nil, false)
	cyc.Add(a.ID, b.ID)
	cyc.Add(b.ID, a.ID)
	if _, err := ValSet(dt, dt.Initial(), a, []Operation{a, b}, cyc, 0); err == nil {
		t.Error("ValSet over a cyclic order should fail")
	}
}

func TestSortByOrderAndValInExtension(t *testing.T) {
	dt := dtype.Log{}
	a := New(dtype.LogAppend{Entry: "a"}, id("c", 0), nil, false)
	b := New(dtype.LogAppend{Entry: "b"}, id("c", 1), []ID{a.ID}, false)
	r := New(dtype.LogRead{}, id("c", 2), []ID{b.ID}, false)
	xs := []Operation{r, b, a} // shuffled input
	po := CSC(xs).TransitiveClosure()
	seq, err := SortByOrder(xs, po)
	if err != nil {
		t.Fatal(err)
	}
	if seq[0].ID != a.ID || seq[1].ID != b.ID || seq[2].ID != r.ID {
		t.Fatalf("SortByOrder = %v", seq)
	}
	v, err := ValInExtension(dt, dt.Initial(), r, xs, po)
	if err != nil {
		t.Fatal(err)
	}
	if v != "a|b" {
		t.Fatalf("ValInExtension = %v, want a|b", v)
	}
	// Cycles surface as errors.
	cyc := po.Clone()
	cyc.Add(r.ID, a.ID)
	if _, err := SortByOrder(xs, cyc); err == nil {
		t.Error("SortByOrder over a cycle should fail")
	}
	if _, err := ValInExtension(dt, dt.Initial(), r, xs, cyc); err == nil {
		t.Error("ValInExtension over a cycle should fail")
	}
}

func TestWellFormed(t *testing.T) {
	a := New(dtype.CtrAdd{N: 1}, id("c", 0), nil, false)
	b := New(dtype.CtrAdd{N: 2}, id("c", 1), []ID{a.ID}, false)
	if err := WellFormed([]Operation{a, b}); err != nil {
		t.Fatalf("well-formed history rejected: %v", err)
	}
	if err := WellFormed([]Operation{a, a}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := WellFormed([]Operation{b, a}); err == nil {
		t.Fatal("forward prev reference accepted")
	}
	if err := WellFormed(nil); err != nil {
		t.Fatalf("empty history rejected: %v", err)
	}
}

// Invariant 4.2 at the ops level: CSC of a well-formed history is acyclic.
func TestWellFormedCSCIsAcyclic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(42))}
	f := func(deps []uint8) bool {
		n := len(deps)
		if n > 8 {
			n = 8
		}
		xs := make([]Operation, 0, n)
		for i := 0; i < n; i++ {
			var prev []ID
			if i > 0 {
				// Reference up to two earlier ops.
				prev = append(prev, xs[int(deps[i])%i].ID)
				if deps[i]%3 == 0 {
					prev = append(prev, xs[int(deps[i]/3)%i].ID)
				}
			}
			xs = append(xs, New(dtype.CtrRead{}, id("c", uint64(i)), prev, deps[i]%2 == 0))
		}
		if err := WellFormed(xs); err != nil {
			return false
		}
		tc := CSC(xs).TransitiveClosure()
		return tc.IsIrreflexive() && tc.IsStrictPartialOrder()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// ValSet over the deterministic witness extension always contains
// ValInExtension's answer.
func TestValInExtensionMemberOfValSet(t *testing.T) {
	dt := dtype.Bank{}
	dep := New(dtype.BankDeposit{Account: "a", Amount: 5}, id("c", 0), nil, false)
	wd := New(dtype.BankWithdraw{Account: "a", Amount: 5}, id("c", 1), nil, false)
	bal := New(dtype.BankBalance{Account: "a"}, id("c", 2), []ID{dep.ID, wd.ID}, false)
	xs := []Operation{dep, wd, bal}
	po := CSC(xs)
	witness, err := ValInExtension(dt, dt.Initial(), bal, xs, po)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := ValSet(dt, dt.Initial(), bal, xs, po, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vs[fmt.Sprint(witness)]; !ok {
		t.Fatalf("witness %v not in valset %v", witness, vs)
	}
}

func TestValSetLimit(t *testing.T) {
	dt := dtype.Counter{}
	xs := []Operation{
		New(dtype.CtrAdd{N: 1}, id("c", 0), nil, false),
		New(dtype.CtrAdd{N: 2}, id("c", 1), nil, false),
		New(dtype.CtrAdd{N: 3}, id("c", 2), nil, false),
	}
	// All adds commute; every extension yields "ok" for the first op. The
	// limit just bounds the enumeration.
	vs, err := ValSet(dt, dt.Initial(), xs[0], xs, order.NewRelation[ID](), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("valset = %v", vs)
	}
}
