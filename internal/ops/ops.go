// Package ops implements operation descriptors and the value semantics of
// §2.3 of Fekete et al.: operation identifiers, prev sets, the
// client-specified-constraints relation CSC, and the outcome / val / valset
// functions that define which responses are legal for a set of operations
// under a partial order.
package ops

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"esds/internal/dtype"
	"esds/internal/order"
)

// ID is a globally unique operation identifier 𝓘. Following §6.2, the
// issuing client is encoded in the identifier (the static function
// client(x.id) is the Client field).
type ID struct {
	Client string
	Seq    uint64
}

// String renders the id as "client:seq".
func (id ID) String() string { return id.Client + ":" + strconv.FormatUint(id.Seq, 10) }

// Less is a deterministic strict total order on IDs (used only as a
// tie-break in checkers and table output, never for consistency).
func (id ID) Less(other ID) bool {
	if id.Client != other.Client {
		return id.Client < other.Client
	}
	return id.Seq < other.Seq
}

// Operation is an operation descriptor (§2.3): a data type operator, a
// unique identifier, a prev set of identifiers that must precede it, and a
// strict flag. Operations are immutable once created; Prev is stored sorted.
type Operation struct {
	Op     dtype.Operator
	ID     ID
	Prev   []ID // sorted by ID.Less, no duplicates
	Strict bool
}

// New constructs an operation descriptor, normalizing the prev set
// (sorting, deduplicating, and dropping self-references).
func New(op dtype.Operator, id ID, prev []ID, strict bool) Operation {
	cp := make([]ID, 0, len(prev))
	seen := make(map[ID]struct{}, len(prev))
	for _, p := range prev {
		if p == id {
			continue
		}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		cp = append(cp, p)
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	return Operation{Op: op, ID: id, Prev: cp, Strict: strict}
}

// String renders the descriptor for diagnostics.
func (x Operation) String() string {
	var b strings.Builder
	b.WriteString(x.ID.String())
	b.WriteByte('=')
	b.WriteString(fmt.Sprint(x.Op))
	if x.Strict {
		b.WriteString("!")
	}
	if len(x.Prev) > 0 {
		parts := make([]string, len(x.Prev))
		for i, p := range x.Prev {
			parts[i] = p.String()
		}
		b.WriteString("{prev:" + strings.Join(parts, ",") + "}")
	}
	return b.String()
}

// HasPrev reports whether id is in the operation's prev set.
func (x Operation) HasPrev(id ID) bool {
	i := sort.Search(len(x.Prev), func(i int) bool { return !x.Prev[i].Less(id) })
	return i < len(x.Prev) && x.Prev[i] == id
}

// IDs returns the identifier set of a slice of operations (the paper's X.id).
func IDs(xs []Operation) map[ID]struct{} {
	s := make(map[ID]struct{}, len(xs))
	for _, x := range xs {
		s[x.ID] = struct{}{}
	}
	return s
}

// CSC builds the client-specified-constraints relation on identifiers
// (§2.3): CSC(X) = { (y.id, x.id) : x ∈ X ∧ y.id ∈ x.prev }.
func CSC(xs []Operation) *order.Relation[ID] {
	r := order.NewRelation[ID]()
	for _, x := range xs {
		for _, p := range x.Prev {
			r.Add(p, x.ID)
		}
	}
	return r
}

// Outcome is outcome_σ(X, ≺) (§2.3): the state after applying the
// operations of seq in order, starting from σ.
func Outcome(dt dtype.DataType, sigma dtype.State, seq []Operation) dtype.State {
	for _, x := range seq {
		sigma, _ = dt.Apply(sigma, x.Op)
	}
	return sigma
}

// Val is val_σ(x, X, ≺) for a totally ordered X given as seq: the value
// returned to x when the operations are applied in that order from σ.
// It panics if x is not in seq (a val for an absent operation is undefined).
func Val(dt dtype.DataType, sigma dtype.State, x Operation, seq []Operation) dtype.Value {
	for _, y := range seq {
		var v dtype.Value
		sigma, v = dt.Apply(sigma, y.Op)
		if y.ID == x.ID {
			return v
		}
	}
	panic(fmt.Sprintf("ops: Val: operation %v not in sequence", x.ID))
}

// ValSet is valset_σ(x, X, ≺) (§2.3): the set of values x may return over
// all linear extensions of the partial order po (a relation on IDs) on X.
// Values are deduplicated by their printed form; the map key is that form
// and the map value is a representative dtype.Value.
//
// limit bounds the number of linear extensions enumerated (<= 0: no limit);
// the exact valset requires no limit, which is exponential in |X| and
// intended for specification-sized sets only.
func ValSet(dt dtype.DataType, sigma dtype.State, x Operation, xs []Operation, po *order.Relation[ID], limit int) (map[string]dtype.Value, error) {
	byID := make(map[ID]Operation, len(xs))
	idSet := make(map[ID]struct{}, len(xs))
	for _, y := range xs {
		byID[y.ID] = y
		idSet[y.ID] = struct{}{}
	}
	if _, ok := byID[x.ID]; !ok {
		return nil, fmt.Errorf("ops: ValSet: operation %v not in set", x.ID)
	}
	out := make(map[string]dtype.Value)
	_, err := po.LinearExtensions(idSet, limit, func(ids []ID) bool {
		seq := make([]Operation, len(ids))
		for i, id := range ids {
			seq[i] = byID[id]
		}
		v := Val(dt, sigma, x, seq)
		out[fmt.Sprint(v)] = v
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ValInExtension computes val for x over the linear extension of po on xs
// obtained deterministically (topological sort with ID tie-break). This is
// the cheap single-witness companion to ValSet.
func ValInExtension(dt dtype.DataType, sigma dtype.State, x Operation, xs []Operation, po *order.Relation[ID]) (dtype.Value, error) {
	seq, err := SortByOrder(xs, po)
	if err != nil {
		return nil, err
	}
	return Val(dt, sigma, x, seq), nil
}

// SortByOrder returns xs sorted by a linear extension of po (deterministic
// ID tie-break). It fails if po is cyclic on xs.
func SortByOrder(xs []Operation, po *order.Relation[ID]) ([]Operation, error) {
	byID := make(map[ID]Operation, len(xs))
	idSet := make(map[ID]struct{}, len(xs))
	for _, y := range xs {
		byID[y.ID] = y
		idSet[y.ID] = struct{}{}
	}
	ids, err := po.TopoSort(idSet, func(a, b ID) bool { return a.Less(b) })
	if err != nil {
		return nil, err
	}
	seq := make([]Operation, len(ids))
	for i, id := range ids {
		seq[i] = byID[id]
	}
	return seq, nil
}

// WellFormed checks the Users well-formedness assumptions (§4) over a
// request history given in issue order: identifiers are unique, and every
// prev set references only earlier operations. It returns nil when the
// history is well-formed.
func WellFormed(history []Operation) error {
	seen := make(map[ID]struct{}, len(history))
	for i, x := range history {
		if _, dup := seen[x.ID]; dup {
			return fmt.Errorf("ops: duplicate operation id %v at position %d", x.ID, i)
		}
		for _, p := range x.Prev {
			if _, ok := seen[p]; !ok {
				return fmt.Errorf("ops: operation %v depends on %v, which was not requested earlier", x.ID, p)
			}
		}
		seen[x.ID] = struct{}{}
	}
	return nil
}
