// Package baseline implements the comparison systems for the E9 experiment:
//
//   - Centralized: the classic single-copy service the paper's introduction
//     contrasts with replication (§1.1): one server applies every operation
//     in arrival order. Strongly consistent, but a throughput bottleneck —
//     the server serializes all work.
//
//   - Ladin-style clients: the causal / forced / immediate operation classes
//     of Ladin et al. [15] expressed on top of the ESDS interface (§1.2
//     notes ESDS generalizes them): causal operations are non-strict with a
//     causal-context prev set, forced and immediate operations are strict.
//
// The all-strict ESDS baseline (Corollary 5.9) needs no code: it is the
// core cluster with every request flagged strict.
package baseline

import (
	"fmt"
	"sync"

	"esds/internal/core"
	"esds/internal/dtype"
	"esds/internal/ops"
	"esds/internal/sim"
	"esds/internal/transport"
)

// CentralizedNode is the transport address of the centralized server.
const CentralizedNode = transport.NodeID("central:0")

// Centralized is the single-copy service: every request is applied to one
// authoritative state, in arrival order, with a fixed per-operation
// processing cost that models the server's CPU (the saturation source when
// load grows).
type Centralized struct {
	mu        sync.Mutex
	dt        dtype.DataType
	s         *sim.Sim
	net       transport.Network
	state     dtype.State
	perOpCost sim.Duration
	busyUntil sim.Time
	applied   uint64
}

// NewCentralized registers the server on the network. perOpCost models the
// processing time each operation occupies the server for.
func NewCentralized(s *sim.Sim, net transport.Network, dt dtype.DataType, perOpCost sim.Duration) *Centralized {
	if perOpCost < 0 {
		panic(fmt.Sprintf("baseline: negative per-op cost %v", perOpCost))
	}
	c := &Centralized{
		dt:        dt,
		s:         s,
		net:       net,
		state:     dt.Initial(),
		perOpCost: perOpCost,
	}
	net.Register(CentralizedNode, c.handle)
	return c
}

func (c *Centralized) handle(m transport.Message) {
	req, ok := m.Payload.(core.RequestMsg)
	if !ok {
		return
	}
	c.mu.Lock()
	// Serialize: the op starts when the server frees up.
	start := c.busyUntil
	if now := c.s.Now(); now > start {
		start = now
	}
	finish := start.Add(c.perOpCost)
	c.busyUntil = finish
	c.mu.Unlock()
	c.s.ScheduleAt(finish, func() {
		c.mu.Lock()
		var v dtype.Value
		c.state, v = c.dt.Apply(c.state, req.Op.Op)
		c.applied++
		c.mu.Unlock()
		c.net.Send(CentralizedNode, core.FrontEndNode(req.Op.ID.Client), core.ResponseMsg{ID: req.Op.ID, Value: v})
	})
}

// Applied returns the number of operations executed.
func (c *Centralized) Applied() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// CentralizedClient issues requests to the centralized server with the same
// front-end bookkeeping as the replicated service.
type CentralizedClient struct {
	fe *core.FrontEnd
}

// NewCentralizedClient builds a client front end pinned to the server.
func NewCentralizedClient(net transport.Network, client string) *CentralizedClient {
	fe := core.NewFrontEnd(core.FrontEndConfig{
		Client:   client,
		Replicas: []transport.NodeID{CentralizedNode},
		Network:  net,
	})
	return &CentralizedClient{fe: fe}
}

// Submit issues an operation (prev and strict are irrelevant for a
// single-copy service: every response reflects all earlier operations).
func (c *CentralizedClient) Submit(op dtype.Operator, cb func(core.Response)) ops.Operation {
	return c.fe.Submit(op, nil, false, cb)
}

// --- Ladin et al. style clients ---

// OpClass is the operation classification of Ladin et al.: causal
// operations need only causal consistency; forced operations are totally
// ordered with respect to other forced operations; immediate operations are
// totally ordered with respect to everything.
type OpClass int

// The three classes of [15].
const (
	Causal OpClass = iota + 1
	Forced
	Immediate
)

func (c OpClass) String() string {
	switch c {
	case Causal:
		return "causal"
	case Forced:
		return "forced"
	case Immediate:
		return "immediate"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// LadinClient maps the [15] interface onto an ESDS front end, as §1.2/§10.3
// describe: causal ordering is expressed with prev sets carrying the
// client's causal context, and the stronger classes use the strict flag
// (which totally orders the operation against everything at response time —
// a conservative superset of "totally ordered against forced operations").
type LadinClient struct {
	mu  sync.Mutex
	fe  *core.FrontEnd
	ctx []ops.ID // causal context: ids this client issued (frontier, capped)
}

// maxCausalContext caps the prev set carried by each operation; the
// context is a frontier, so the most recent ids dominate older ones
// transitively (each op's prev includes the previous frontier).
const maxCausalContext = 2

// NewLadinClient wraps an ESDS front end.
func NewLadinClient(fe *core.FrontEnd) *LadinClient {
	if fe == nil {
		panic("baseline: nil front end")
	}
	return &LadinClient{fe: fe}
}

// Submit issues an operation in the given class. The returned descriptor's
// id joins the client's causal context.
func (l *LadinClient) Submit(op dtype.Operator, class OpClass, cb func(core.Response)) ops.Operation {
	l.mu.Lock()
	prev := append([]ops.ID(nil), l.ctx...)
	l.mu.Unlock()

	strict := class == Forced || class == Immediate
	x := l.fe.Submit(op, prev, strict, cb)

	l.mu.Lock()
	l.ctx = append(l.ctx, x.ID)
	if len(l.ctx) > maxCausalContext {
		l.ctx = l.ctx[len(l.ctx)-maxCausalContext:]
	}
	l.mu.Unlock()
	return x
}

// Context returns the current causal context (for tests).
func (l *LadinClient) Context() []ops.ID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ops.ID(nil), l.ctx...)
}
