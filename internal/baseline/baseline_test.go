package baseline

import (
	"testing"

	"esds/internal/core"
	"esds/internal/dtype"
	"esds/internal/sim"
	"esds/internal/transport"
)

func TestCentralizedAppliesInOrderAndSerializes(t *testing.T) {
	s := sim.New(1)
	net := transport.NewSimNet(s, transport.SimNetConfig{Latency: transport.FixedLatency(sim.Millisecond)})
	srv := NewCentralized(s, net, dtype.Counter{}, 2*sim.Millisecond)
	cl := NewCentralizedClient(net, "c1")

	var responses []core.Response
	var latencies []sim.Duration
	start := s.Now()
	for i := 0; i < 5; i++ {
		cl.Submit(dtype.CtrAdd{N: 1}, func(r core.Response) {
			responses = append(responses, r)
			latencies = append(latencies, s.Now().Sub(start))
		})
	}
	var read dtype.Value
	cl.Submit(dtype.CtrRead{}, func(r core.Response) { read = r.Value })
	s.Run(0)
	if len(responses) != 5 {
		t.Fatalf("responses = %d", len(responses))
	}
	if read != int64(5) {
		t.Fatalf("read = %v", read)
	}
	if srv.Applied() != 6 {
		t.Fatalf("applied = %d", srv.Applied())
	}
	// Serialization: with 2ms per op, the 5th add completes no earlier than
	// 1ms (request) + 5·2ms + 1ms (response) = 12ms.
	last := latencies[len(latencies)-1]
	if last < 12*sim.Millisecond {
		t.Fatalf("server did not serialize: last latency %v", last)
	}
}

func TestCentralizedIgnoresGarbage(t *testing.T) {
	s := sim.New(1)
	net := transport.NewSimNet(s, transport.SimNetConfig{})
	srv := NewCentralized(s, net, dtype.Counter{}, 0)
	net.Send("x", CentralizedNode, "garbage")
	s.Run(0)
	if srv.Applied() != 0 {
		t.Fatal("garbage applied")
	}
}

func TestCentralizedValidation(t *testing.T) {
	s := sim.New(1)
	net := transport.NewSimNet(s, transport.SimNetConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCentralized(s, net, dtype.Counter{}, -1)
}

func newClusterEnv(t *testing.T) (*sim.Sim, *core.Cluster) {
	t.Helper()
	s := sim.New(1)
	net := transport.NewSimNet(s, transport.SimNetConfig{Latency: transport.FixedLatency(sim.Millisecond)})
	cluster := core.NewCluster(core.ClusterConfig{
		Replicas: 3,
		DataType: dtype.Log{},
		Network:  net,
		Options:  core.Options{Memoize: true},
	})
	cluster.StartSimGossip(s, 5*sim.Millisecond)
	return s, cluster
}

func TestLadinCausalChainOrdering(t *testing.T) {
	s, cluster := newClusterEnv(t)
	lc := NewLadinClient(cluster.FrontEnd("u"))

	// Causal appends from one client must appear in issue order (their prev
	// chains force it), even without strictness.
	for i, e := range []string{"a", "b", "c"} {
		x := lc.Submit(dtype.LogAppend{Entry: e}, Causal, nil)
		if i > 0 && len(x.Prev) == 0 {
			t.Fatal("causal op missing context")
		}
	}
	var got dtype.Value
	lc.Submit(dtype.LogRead{}, Causal, func(r core.Response) { got = r.Value })
	s.RunFor(500 * sim.Millisecond)
	if got != "a|b|c" {
		t.Fatalf("causal read = %v, want a|b|c", got)
	}
	if n := len(lc.Context()); n != maxCausalContext {
		t.Fatalf("context size = %d, want %d", n, maxCausalContext)
	}
}

func TestLadinForcedIsStrict(t *testing.T) {
	s, cluster := newClusterEnv(t)
	lc := NewLadinClient(cluster.FrontEnd("u"))
	x := lc.Submit(dtype.LogAppend{Entry: "f"}, Forced, nil)
	if !x.Strict {
		t.Fatal("forced op not strict")
	}
	y := lc.Submit(dtype.LogRead{}, Immediate, nil)
	if !y.Strict {
		t.Fatal("immediate op not strict")
	}
	z := lc.Submit(dtype.LogRead{}, Causal, nil)
	if z.Strict {
		t.Fatal("causal op strict")
	}
	s.RunFor(500 * sim.Millisecond)
}

func TestLadinClassStrings(t *testing.T) {
	if Causal.String() != "causal" || Forced.String() != "forced" || Immediate.String() != "immediate" {
		t.Fatal("class strings wrong")
	}
	if OpClass(99).String() != "OpClass(99)" {
		t.Fatal("unknown class string wrong")
	}
}

func TestLadinNilFrontEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLadinClient(nil)
}
