// Command benchjson converts `go test -bench` output into a JSON metrics
// artifact while echoing its input unchanged (a tee), so a single pipeline
// both shows the run and captures it:
//
//	go test -bench . -benchtime 1x -run '^$' . | benchjson -o BENCH_results.json
//
// Every benchmark line ("BenchmarkName-P  N  value unit  value unit ...")
// becomes a record with its iteration count and metric map — including
// custom b.ReportMetric units like speedup or resp/s — which is what the
// performance trajectory across PRs tracks.
//
// With -require BASELINE the run fails if any committed benchmark or
// metric disappeared (silent harness rot); adding -max-regress F also
// fails it if any throughput metric (ops/s, resp/s) fell more than
// fraction F below its committed value — the perf-trajectory gate —
// optionally scoped by -regress-match to benchmarks whose throughput is
// stable enough to gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "BENCH_results.json", "output JSON path")
	require := fs.String("require", "",
		"path to a previously committed results file; fail unless every benchmark in it still appears in this run with at least the same metric keys (catches silent harness rot — a benchmark that stopped running or stopped emitting a metric)")
	maxRegress := fs.Float64("max-regress", 0,
		"with -require: also fail if any throughput metric (a unit containing \"ops/s\" or \"resp/s\") fell more than this fraction below its committed baseline value, or any wire-efficiency metric (a unit containing \"bytes/op\") rose more than this fraction above it — e.g. 0.2 fails a >20% regression; 0 disables the gate")
	regressMatch := fs.String("regress-match", "",
		"with -max-regress: regexp limiting the regression gate to matching benchmark names (empty = every benchmark); use it to gate only benchmarks whose throughput is stable run-to-run — windowed metrics like a resize's mid-migration ops/s can swing ±2× on identical code")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var regressRE *regexp.Regexp
	if *regressMatch != "" {
		var err error
		if regressRE, err = regexp.Compile(*regressMatch); err != nil {
			fmt.Fprintf(stderr, "benchjson: -regress-match: %v\n", err)
			return 2
		}
	}
	if *maxRegress < 0 || *maxRegress >= 1 {
		if *maxRegress != 0 {
			fmt.Fprintf(stderr, "benchjson: -max-regress %v must be in [0, 1)\n", *maxRegress)
			return 2
		}
	}
	if *maxRegress > 0 && *require == "" {
		fmt.Fprintf(stderr, "benchjson: -max-regress needs -require (the committed baseline to regress against)\n")
		return 2
	}
	results, sawFail, err := parse(stdin, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if sawFail {
		fmt.Fprintf(stderr, "benchjson: input contains a test failure; not writing %s\n", *out)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintf(stderr, "benchjson: no benchmark lines in input; not writing %s\n", *out)
		return 1
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "benchjson: wrote %d benchmark records to %s\n", len(results), *out)
	if *require != "" {
		missing, err := diffAgainst(*require, results)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		if len(missing) > 0 {
			fmt.Fprintf(stderr, "benchjson: benchmark coverage regressed against %s:\n", *require)
			for _, m := range missing {
				fmt.Fprintf(stderr, "  %s\n", m)
			}
			return 1
		}
		fmt.Fprintf(stderr, "benchjson: coverage matches %s (%d benchmarks, no metric disappeared)\n",
			*require, len(results))
		if *maxRegress > 0 {
			regressed, err := regressionsAgainst(*require, results, *maxRegress, regressRE)
			if err != nil {
				fmt.Fprintf(stderr, "benchjson: %v\n", err)
				return 1
			}
			if len(regressed) > 0 {
				fmt.Fprintf(stderr, "benchjson: throughput regressed more than %.0f%% against %s:\n",
					*maxRegress*100, *require)
				for _, m := range regressed {
					fmt.Fprintf(stderr, "  %s\n", m)
				}
				return 1
			}
			fmt.Fprintf(stderr, "benchjson: no throughput metric regressed more than %.0f%%\n", *maxRegress*100)
		}
	}
	return 0
}

// throughputMetric reports whether a metric unit names a higher-is-better
// quantity the trajectory gates on: operation rates, and speedup ratios —
// the latter are machine-normalized (batched/unbatched on the SAME
// hardware), so they hold across runners where absolute ops/s may not.
// Latencies and fit coefficients have no universal better-direction and
// stay ungated (tracked, not enforced).
func throughputMetric(unit string) bool {
	return strings.Contains(unit, "ops/s") || strings.Contains(unit, "resp/s") ||
		strings.Contains(unit, "speedup")
}

// byteMetric reports whether a metric unit names a lower-is-better wire
// quantity the trajectory gates on: bytes per operation. Unlike wall-clock
// rates these are structural — frame layouts and batching decisions, not
// machine speed — so the committed baseline is a ceiling the fresh run
// must stay under (within the -max-regress slack).
func byteMetric(unit string) bool {
	return strings.Contains(unit, "bytes/op")
}

// regressionsAgainst compares every gated metric of the fresh run with the
// committed baseline: a throughput value below (1 - maxRegress) × baseline
// is a regression, and a bytes/op value above (1 + maxRegress) × baseline
// is one too. A non-nil match restricts the gate to benchmarks whose name
// it matches. Coverage is checked by diffAgainst first, so a missing
// metric has already failed the run.
func regressionsAgainst(baselinePath string, fresh []Result, maxRegress float64, match *regexp.Regexp) ([]string, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var baseline []Result
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	byName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	var regressed []string
	for _, want := range baseline {
		if match != nil && !match.MatchString(want.Name) {
			continue
		}
		got, ok := byName[want.Name]
		if !ok {
			continue // diffAgainst already reported it
		}
		for key, base := range want.Metrics {
			if base <= 0 {
				continue
			}
			cur, ok := got.Metrics[key]
			if !ok {
				continue
			}
			switch {
			case throughputMetric(key) && cur < base*(1-maxRegress):
				regressed = append(regressed, fmt.Sprintf("%s %s: %.1f → %.1f (-%.0f%%)",
					want.Name, key, base, cur, (1-cur/base)*100))
			case byteMetric(key) && cur > base*(1+maxRegress):
				regressed = append(regressed, fmt.Sprintf("%s %s: %.1f → %.1f (+%.0f%%)",
					want.Name, key, base, cur, (cur/base-1)*100))
			}
		}
	}
	sort.Strings(regressed)
	return regressed, nil
}

// diffAgainst compares a fresh run with a committed baseline file: every
// benchmark the baseline records must still exist, and must still emit at
// least the metric keys it used to. Values are NOT compared — the
// trajectory tracks those; this guards against silent harness rot, where
// a benchmark quietly stops running or stops reporting a metric and the
// artifact shrinks without anyone failing.
func diffAgainst(baselinePath string, fresh []Result) ([]string, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var baseline []Result
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	byName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	var missing []string
	for _, want := range baseline {
		got, ok := byName[want.Name]
		if !ok {
			missing = append(missing, fmt.Sprintf("benchmark %s disappeared", want.Name))
			continue
		}
		for key := range want.Metrics {
			if _, ok := got.Metrics[key]; !ok {
				missing = append(missing, fmt.Sprintf("benchmark %s stopped emitting metric %q", want.Name, key))
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// parse tees every input line to out and collects benchmark records.
func parse(in io.Reader, out io.Writer) ([]Result, bool, error) {
	var (
		results []Result
		sawFail bool
	)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		fmt.Fprintln(out, line)
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
			sawFail = true
		}
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	return results, sawFail, scanner.Err()
}

// parseLine decodes one "BenchmarkX-8  1  123 ns/op  4.5 speedup" line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       trimProcsSuffix(fields[0]),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	// Remaining fields come in "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// trimProcsSuffix removes the trailing -P GOMAXPROCS marker Go appends to
// benchmark names when P > 1, so the same benchmark keys identically in
// the trajectory regardless of the runner's core count. Only the CURRENT
// process's P is trimmed (benchjson runs in the same pipeline as the
// bench): a name that merely ends in digits — e.g. a "/shards-4" sweep
// point under GOMAXPROCS=1, where Go appends nothing — is left intact.
func trimProcsSuffix(name string) string {
	p := runtime.GOMAXPROCS(0)
	if p <= 1 {
		return name
	}
	return strings.TrimSuffix(name, fmt.Sprintf("-%d", p))
}
