package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// sample builds go-test bench output the way the current process would
// produce it: Go appends the -P GOMAXPROCS suffix only when P > 1.
func sample() string {
	suffix := ""
	if p := runtime.GOMAXPROCS(0); p > 1 {
		suffix = fmt.Sprintf("-%d", p)
	}
	return fmt.Sprintf(`goos: linux
goarch: amd64
pkg: esds
BenchmarkE1ThroughputVsReplicas%[1]s   	       1	  12345678 ns/op	         0.9990 R2	       245.1 resp/s/replica
BenchmarkE10ShardedThroughput%[1]s     	       1	9999 ns/op	      1910 ops/s-baseline	      4452 ops/s-sharded	         2.330 speedup
BenchmarkDataTypeApply/counter%[1]s    	       1	        25.00 ns/op
PASS
ok  	esds	4.2s
`, suffix)
}

func TestParseAndWrite(t *testing.T) {
	in := sample()
	outPath := filepath.Join(t.TempDir(), "BENCH_test.json")
	var tee strings.Builder
	code := run([]string{"-o", outPath}, strings.NewReader(in), &tee, os.Stderr)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if tee.String() != in {
		t.Fatal("input was not tee'd verbatim")
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d records, want 3", len(results))
	}
	e10 := results[1]
	// The GOMAXPROCS suffix must be stripped, so trajectory keys are
	// machine-independent.
	if e10.Name != "BenchmarkE10ShardedThroughput" || e10.Iterations != 1 {
		t.Fatalf("e10 record = %+v", e10)
	}
	if e10.Metrics["speedup"] != 2.33 || e10.Metrics["ops/s-sharded"] != 4452 {
		t.Fatalf("e10 metrics = %v", e10.Metrics)
	}
	if results[2].Name != "BenchmarkDataTypeApply/counter" || results[2].Metrics["ns/op"] != 25 {
		t.Fatalf("sub-benchmark record = %+v", results[2])
	}
}

// TestKeepsDigitTailWithoutSuffix pins the trimming rule: a name whose
// own tail looks numeric (a "/shards-4" sweep point) must survive when Go
// appended no GOMAXPROCS marker.
func TestKeepsDigitTailWithoutSuffix(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p == 4 {
		t.Skip("ambiguous on exactly 4 procs by construction")
	}
	r, ok := parseLine("BenchmarkE10/shards-4 	 1 	 10 ns/op")
	if !ok || r.Name != "BenchmarkE10/shards-4" {
		t.Fatalf("record = %+v, ok=%v", r, ok)
	}
}

func TestRefusesFailuresAndEmptyInput(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_test.json")
	var tee strings.Builder
	if code := run([]string{"-o", outPath}, strings.NewReader("PASS\nok esds 1s\n"), &tee, &strings.Builder{}); code == 0 {
		t.Fatal("accepted input without benchmarks")
	}
	failing := "BenchmarkX-8 1 10 ns/op\n--- FAIL: TestY\nFAIL\n"
	if code := run([]string{"-o", outPath}, strings.NewReader(failing), &tee, &strings.Builder{}); code == 0 {
		t.Fatal("accepted failing input")
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatal("artifact written despite failure")
	}
}

// TestRequireDiff pins the -require coverage gate: a benchmark or metric
// present in the committed baseline but absent from the fresh run must
// fail the pipeline; a superset run passes.
func TestRequireDiff(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "committed.json")
	writeBaseline := func(content string) {
		if err := os.WriteFile(baseline, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	runWith := func(input string) (int, string) {
		var stderr strings.Builder
		code := run([]string{"-o", filepath.Join(dir, "out.json"), "-require", baseline},
			strings.NewReader(input), io.Discard, &stderr)
		return code, stderr.String()
	}

	writeBaseline(`[{"name":"BenchmarkA","iterations":1,"metrics":{"ns/op":5,"speedup":2}},
	               {"name":"BenchmarkB","iterations":1,"metrics":{"ns/op":7}}]`)

	// Identical coverage (values may drift freely) passes.
	if code, errOut := runWith("BenchmarkA 1 9 ns/op 1.5 speedup\nBenchmarkB 1 3 ns/op\n"); code != 0 {
		t.Fatalf("matching coverage failed (%d): %s", code, errOut)
	}
	// Extra benchmarks pass (growth is fine).
	if code, errOut := runWith("BenchmarkA 1 9 ns/op 1.5 speedup\nBenchmarkB 1 3 ns/op\nBenchmarkC 1 2 ns/op\n"); code != 0 {
		t.Fatalf("superset coverage failed (%d): %s", code, errOut)
	}
	// A disappeared benchmark fails.
	code, errOut := runWith("BenchmarkA 1 9 ns/op 1.5 speedup\n")
	if code == 0 || !strings.Contains(errOut, "BenchmarkB disappeared") {
		t.Fatalf("missing benchmark not caught (%d): %s", code, errOut)
	}
	// A disappeared metric fails.
	code, errOut = runWith("BenchmarkA 1 9 ns/op\nBenchmarkB 1 3 ns/op\n")
	if code == 0 || !strings.Contains(errOut, `stopped emitting metric "speedup"`) {
		t.Fatalf("missing metric not caught (%d): %s", code, errOut)
	}
	// A malformed baseline is an error, not a silent pass.
	writeBaseline("not json")
	if code, _ := runWith("BenchmarkA 1 9 ns/op\n"); code == 0 {
		t.Fatal("malformed baseline accepted")
	}
}

func TestMaxRegress(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "committed.json")
	if err := os.WriteFile(baseline, []byte(
		`[{"name":"BenchmarkE12","iterations":1,"metrics":{"ops/s-batched":1000,"bytes/op-batched":600,"speedup":4}},
		  {"name":"BenchmarkE2","iterations":1,"metrics":{"ms/100pct":30}}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	runWith := func(input string, extra ...string) (int, string) {
		var stderr strings.Builder
		args := append([]string{"-o", filepath.Join(dir, "out.json"), "-require", baseline}, extra...)
		code := run(args, strings.NewReader(input), io.Discard, &stderr)
		return code, stderr.String()
	}

	// Throughput and bytes/op within the 20% envelope pass; unrecognized
	// metrics (latency fits) may move freely in either direction.
	ok := "BenchmarkE12 1 850 ops/s-batched 650 bytes/op-batched 3.6 speedup\nBenchmarkE2 1 500 ms/100pct\n"
	if code, errOut := runWith(ok, "-max-regress", "0.2"); code != 0 {
		t.Fatalf("in-envelope run failed (%d): %s", code, errOut)
	}
	// A >20% throughput drop fails and names the metric.
	bad := "BenchmarkE12 1 700 ops/s-batched 600 bytes/op-batched 4 speedup\nBenchmarkE2 1 30 ms/100pct\n"
	code, errOut := runWith(bad, "-max-regress", "0.2")
	if code == 0 || !strings.Contains(errOut, "ops/s-batched") {
		t.Fatalf("30%% regression not caught (%d): %s", code, errOut)
	}
	// Speedup ratios are gated too — they are the machine-normalized form
	// of throughput, stable across runners where absolute ops/s is not.
	slow := "BenchmarkE12 1 1000 ops/s-batched 600 bytes/op-batched 2.0 speedup\nBenchmarkE2 1 30 ms/100pct\n"
	code, errOut = runWith(slow, "-max-regress", "0.2")
	if code == 0 || !strings.Contains(errOut, "speedup") {
		t.Fatalf("speedup regression not caught (%d): %s", code, errOut)
	}
	// Bytes/op is gated in the OTHER direction — the committed value is a
	// ceiling, so wire bloat >20% fails and names the metric...
	fat := "BenchmarkE12 1 1000 ops/s-batched 900 bytes/op-batched 4 speedup\nBenchmarkE2 1 30 ms/100pct\n"
	code, errOut = runWith(fat, "-max-regress", "0.2")
	if code == 0 || !strings.Contains(errOut, "bytes/op-batched") || !strings.Contains(errOut, "+50%") {
		t.Fatalf("bytes/op bloat not caught (%d): %s", code, errOut)
	}
	// ...while a bytes/op DROP is an improvement and passes.
	lean := "BenchmarkE12 1 1000 ops/s-batched 300 bytes/op-batched 4 speedup\nBenchmarkE2 1 30 ms/100pct\n"
	if code, errOut := runWith(lean, "-max-regress", "0.2"); code != 0 {
		t.Fatalf("bytes/op improvement failed the gate (%d): %s", code, errOut)
	}
	// Without the flag the same drop only tracks, never fails.
	if code, errOut := runWith(bad); code != 0 {
		t.Fatalf("ungated run failed (%d): %s", code, errOut)
	}
	// -regress-match scopes the gate to matching benchmark names: the E12
	// drop is outside a gate scoped to BenchmarkE2...
	if code, errOut := runWith(bad, "-max-regress", "0.2", "-regress-match", "^BenchmarkE2$"); code != 0 {
		t.Fatalf("out-of-scope regression failed the run (%d): %s", code, errOut)
	}
	// ...and inside a gate scoped to BenchmarkE12.
	if code, errOut := runWith(bad, "-max-regress", "0.2", "-regress-match", "^BenchmarkE12"); code == 0 || !strings.Contains(errOut, "ops/s-batched") {
		t.Fatalf("in-scope regression not caught (%d): %s", code, errOut)
	}
	// A malformed regexp is a usage error.
	if code, _ := runWith(bad, "-max-regress", "0.2", "-regress-match", "("); code != 2 {
		t.Fatal("malformed -regress-match accepted")
	}
	// Flag validation: -max-regress needs -require, and a sane fraction.
	var stderr strings.Builder
	if code := run([]string{"-o", filepath.Join(dir, "out.json"), "-max-regress", "0.2"},
		strings.NewReader(ok), io.Discard, &stderr); code != 2 {
		t.Fatalf("-max-regress without -require exited %d", code)
	}
	stderr.Reset()
	if code := run([]string{"-o", filepath.Join(dir, "out.json"), "-require", baseline, "-max-regress", "1.5"},
		strings.NewReader(ok), io.Discard, &stderr); code != 2 {
		t.Fatalf("-max-regress 1.5 exited %d", code)
	}
}
