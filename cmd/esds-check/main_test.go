package main

import "testing"

func TestSmallRunPasses(t *testing.T) {
	if code := run([]string{"-runs", "3", "-steps", "150", "-q"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestAllStrictRunPasses(t *testing.T) {
	if code := run([]string{"-runs", "2", "-steps", "150", "-strict", "1.0", "-q"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestFourReplicas(t *testing.T) {
	if code := run([]string{"-runs", "2", "-steps", "200", "-replicas", "4", "-requests", "4", "-q"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
