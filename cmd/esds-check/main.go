// Command esds-check runs the formal-verification harness: randomized
// exploration of the transliterated algorithm (internal/model) against the
// ESDS-II specification (internal/spec), checking every §7 invariant and
// the §8 forward simulation relation F on every step, across many seeds.
// It then sweeps the snapshot-install equivalence obligation (the soundness
// of §9.3 + §10.2 composition): for every snapshottable data type and every
// cut of random histories, installing the canonical state snapshot of the
// prefix must be indistinguishable from replaying the prefix's descriptors.
// A further sweep covers the range catch-up equivalence (DESIGN.md §13):
// splicing a chunked single-peer range transfer onto a local prefix must be
// indistinguishable from the full snapshot install at the same cut and from
// uninterrupted replay, across (have, cut) windows and chunk sizes.
//
// Usage:
//
//	esds-check -runs 50 -steps 300 -replicas 3 -strict 0.3 -snapshot-runs 25
//
// Exit status 0 means every run passed; any invariant or simulation
// violation prints a counterexample trace position and exits 1.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"esds/internal/dtype"
	"esds/internal/ioa"
	"esds/internal/model"
	"esds/internal/ops"
	"esds/internal/spec"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("esds-check", flag.ContinueOnError)
	runs := fs.Int("runs", 40, "number of random executions")
	steps := fs.Int("steps", 300, "steps per execution")
	replicas := fs.Int("replicas", 3, "replicas in the model")
	requests := fs.Int("requests", 5, "requests per execution (valset checks are exponential; keep small)")
	strictProb := fs.Float64("strict", 0.3, "probability a request is strict")
	seed := fs.Int64("seed", 1, "base seed")
	snapshotRuns := fs.Int("snapshot-runs", 25,
		"random histories per data type for the snapshot-install equivalence sweep (0 disables)")
	snapshotLen := fs.Int("snapshot-len", 24, "operations per history in the snapshot sweep")
	resizeRuns := fs.Int("resize-runs", 10,
		"random keyed histories per data type for the resize equivalence sweep (0 disables): every cut of every history, across several ring growths, must match the unsharded serial order")
	resizeLen := fs.Int("resize-len", 24, "operations per history in the resize sweep")
	rangeRuns := fs.Int("range-runs", 10,
		"random histories per data type for the range catch-up equivalence sweep (0 disables): chunked single-peer transfers at every (have, cut) window must match the full snapshot install and the uninterrupted replay")
	rangeLen := fs.Int("range-len", 24, "operations per history in the range sweep")
	quiet := fs.Bool("q", false, "only print failures and the summary")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	workload := spec.Workload{
		Operators:   []dtype.Operator{dtype.CtrAdd{N: 1}, dtype.CtrDouble{}, dtype.CtrRead{}},
		Clients:     []string{"a", "b"},
		MaxRequests: *requests,
		StrictProb:  *strictProb,
		PrevProb:    0.2,
	}

	failures := 0
	totalSteps := 0
	for i := 0; i < *runs; i++ {
		rng := rand.New(rand.NewSource(*seed + int64(i)))
		sys := model.NewSystem(dtype.Counter{}, *replicas, workload.Clients)
		users := spec.NewUsers(workload)
		checker := model.NewSimulationChecker(sys, dtype.Counter{})
		comp := ioa.Compose(users, sys)
		res, err := ioa.Run(comp, *steps, rng, model.Invariants(sys, users), checker.OnStep)
		totalSteps += res.Steps
		if err != nil {
			failures++
			fmt.Printf("run %d (seed %d): FAIL after %d steps: %v\n", i, *seed+int64(i), res.Steps, err)
			fmt.Printf("external trace so far:\n%s\n", res.Trace)
			continue
		}
		if !*quiet {
			fmt.Printf("run %d (seed %d): ok — %d steps, %d requests, %d responses\n",
				i, *seed+int64(i), res.Steps, len(users.Requested()), len(users.Responses()))
		}
	}
	fmt.Printf("\nesds-check: %d/%d runs passed (%d total steps); §7 invariants + simulation F checked every step\n",
		*runs-failures, *runs, totalSteps)

	snapFailures, snapChecks := snapshotSweep(*snapshotRuns, *snapshotLen, *seed, *quiet)
	if *snapshotRuns > 0 {
		fmt.Printf("esds-check: snapshot-install equivalence: %d/%d cut checks passed\n",
			snapChecks-snapFailures, snapChecks)
	}

	resizeFailures, resizeChecks := resizeSweep(*resizeRuns, *resizeLen, *seed, *quiet)
	if *resizeRuns > 0 {
		fmt.Printf("esds-check: resize equivalence: %d/%d cut checks passed\n",
			resizeChecks-resizeFailures, resizeChecks)
	}

	rangeFailures, rangeChecks := rangeSweep(*rangeRuns, *rangeLen, *seed, *quiet)
	if *rangeRuns > 0 {
		fmt.Printf("esds-check: range catch-up equivalence: %d/%d window checks passed\n",
			rangeChecks-rangeFailures, rangeChecks)
	}

	if failures+snapFailures+resizeFailures+rangeFailures > 0 {
		return 1
	}
	return 0
}

// rangeSweep checks CheckRangeCatchupEquivalence for every snapshottable
// data type (each built-in and its keyed lift) over random histories, at
// every (have, cut) window and several chunk sizes. It returns
// (failures, checks).
func rangeSweep(runs, histLen int, seed int64, quiet bool) (failures, checks int) {
	if runs <= 0 {
		return 0, 0
	}
	var dts []dtype.DataType
	for _, name := range dtype.Names() {
		dt, _ := dtype.ByName(name)
		dts = append(dts, dt, dtype.NewKeyed(dt))
	}
	for _, dt := range dts {
		for run := 0; run < runs; run++ {
			rng := rand.New(rand.NewSource(seed + int64(run)))
			seq := make([]ops.Operation, histLen)
			for i := range seq {
				seq[i] = ops.New(dtype.RandomOp(rng, dt), ops.ID{Client: "chk", Seq: uint64(i)}, nil, false)
			}
			for cut := 0; cut <= len(seq); cut += 2 {
				for _, have := range []int{0, cut / 2, cut} {
					for _, chunk := range []int{1, 5} {
						checks++
						if err := spec.CheckRangeCatchupEquivalence(dt, seq, have, cut, chunk); err != nil {
							failures++
							fmt.Printf("range sweep: %s (seed %d, have %d, cut %d, chunk %d): FAIL: %v\n",
								dt.Name(), seed+int64(run), have, cut, chunk, err)
						}
					}
				}
			}
		}
		if !quiet {
			fmt.Printf("range sweep: %s: ok — %d histories × all windows × 2 chunk sizes\n", dt.Name(), runs)
		}
	}
	return failures, checks
}

// resizeSweep checks CheckResizeEquivalence for every built-in data type
// over random keyed histories: every cut of every history, across several
// ring growth shapes, must be indistinguishable from the unsharded serial
// order. It returns (failures, checks).
func resizeSweep(runs, histLen int, seed int64, quiet bool) (failures, checks int) {
	if runs <= 0 {
		return 0, 0
	}
	growths := [][2]int{{1, 2}, {2, 3}, {4, 8}}
	for _, name := range dtype.Names() {
		dt, _ := dtype.ByName(name)
		for run := 0; run < runs; run++ {
			rng := rand.New(rand.NewSource(seed + int64(run)))
			seq := make([]ops.Operation, histLen)
			for i := range seq {
				key := fmt.Sprintf("obj-%d", rng.Intn(6))
				seq[i] = ops.New(dtype.KeyedOp{Key: key, Op: dtype.RandomOp(rng, dt)},
					ops.ID{Client: "chk", Seq: uint64(i)}, nil, false)
			}
			for _, g := range growths {
				for cut := 0; cut <= len(seq); cut++ {
					checks++
					if err := spec.CheckResizeEquivalence(dt, seq, cut, g[0], g[1]); err != nil {
						failures++
						fmt.Printf("resize sweep: %s (%d→%d shards, seed %d, cut %d): FAIL: %v\n",
							name, g[0], g[1], seed+int64(run), cut, err)
					}
				}
			}
		}
		if !quiet {
			fmt.Printf("resize sweep: %s: ok — %d histories × all cuts × %d growths\n", name, runs, len(growths))
		}
	}
	return failures, checks
}

// snapshotSweep checks CheckSnapshotInstallEquivalence for every
// snapshottable data type (each built-in and its keyed lift) over random
// histories, at every cut of every history. It returns (failures, checks).
func snapshotSweep(runs, histLen int, seed int64, quiet bool) (failures, checks int) {
	if runs <= 0 {
		return 0, 0
	}
	var dts []dtype.DataType
	for _, name := range dtype.Names() {
		dt, _ := dtype.ByName(name)
		dts = append(dts, dt, dtype.NewKeyed(dt))
	}
	for _, dt := range dts {
		if !dtype.CanSnapshot(dt) {
			fmt.Printf("snapshot sweep: %s: FAIL: no snapshot encoding\n", dt.Name())
			failures++
			checks++
			continue
		}
		for run := 0; run < runs; run++ {
			rng := rand.New(rand.NewSource(seed + int64(run)))
			seq := make([]ops.Operation, histLen)
			for i := range seq {
				seq[i] = ops.New(dtype.RandomOp(rng, dt), ops.ID{Client: "chk", Seq: uint64(i)}, nil, false)
			}
			for cut := 0; cut <= len(seq); cut++ {
				checks++
				if err := spec.CheckSnapshotInstallEquivalence(dt, seq, cut); err != nil {
					failures++
					fmt.Printf("snapshot sweep: %s (seed %d, cut %d): FAIL: %v\n", dt.Name(), seed+int64(run), cut, err)
				}
			}
		}
		if !quiet {
			fmt.Printf("snapshot sweep: %s: ok — %d histories × all cuts\n", dt.Name(), runs)
		}
	}
	return failures, checks
}
