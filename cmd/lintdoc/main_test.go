package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write puts one source file into dir.
func write(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCatchesUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `package p

// Documented is fine.
type Documented struct{}

type Naked struct{}

// DocFn is fine.
func DocFn() {}

func NakedFn() {}

func unexported() {}

// Method is fine.
func (Documented) Method() {}

func (Documented) NakedMethod() {}

func (Naked) alsoUnexported() {}

// Grouped constants share the group comment.
const (
	GroupedA = 1
	GroupedB = 2
)

var NakedVar = 3

// LineDoc per spec is fine.
var (
	// SpecDoc covers this one.
	SpecDoc = 4
)
`)
	// Test files are excluded even when they would fail the check.
	write(t, dir, "a_test.go", "package p\n\nfunc TestExportedHelper() {}\n")

	missing, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(missing, "\n")
	for _, want := range []string{"type Naked", "function NakedFn", "method NakedMethod", "var NakedVar"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing expected finding %q in:\n%s", want, joined)
		}
	}
	for _, clean := range []string{"Documented", "DocFn", "GroupedA", "SpecDoc", "unexported", "TestExportedHelper"} {
		for _, m := range missing {
			if strings.Contains(m, clean+" ") || strings.HasSuffix(m, clean) {
				t.Errorf("false positive on %s: %s", clean, m)
			}
		}
	}
	if len(missing) != 4 {
		t.Errorf("found %d undocumented symbols, want 4:\n%s", len(missing), joined)
	}
}

func TestCleanPackagePasses(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "ok.go", `// Package p is documented.
package p

// Exported is documented.
func Exported() {}
`)
	var out, errOut strings.Builder
	if code := run([]string{dir}, &out, &errOut); code != 0 {
		t.Fatalf("clean package exited %d: %s%s", code, out.String(), errOut.String())
	}
	dirty := t.TempDir()
	write(t, dirty, "bad.go", "package p\n\nfunc Bad() {}\n")
	if code := run([]string{dirty}, &out, &errOut); code != 1 {
		t.Fatalf("dirty package exited %d", code)
	}
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exited %d", code)
	}
}
