// Command lintdoc fails when an exported symbol of a Go package directory
// lacks a doc comment. It is the `make lint` guard for the public esds API:
// every Config knob, type, method, and function a downstream user sees must
// say what it does — a PR that adds an undocumented export breaks the
// build, not the godoc.
//
// Usage:
//
//	lintdoc DIR...
//
// Each DIR is parsed as one package (test files excluded). Exported
// identifiers checked: package-level types, functions, methods (on
// exported receivers), and each exported name inside var/const/field
// groups — a group doc comment covers its members, matching godoc's
// rendering. Exit status 1 lists every undocumented export.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "lintdoc: usage: lintdoc DIR...")
		return 2
	}
	failures := 0
	for _, dir := range args {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "lintdoc: %v\n", err)
			return 2
		}
		for _, m := range missing {
			fmt.Fprintf(stdout, "%s\n", m)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "lintdoc: %d undocumented exported symbol(s)\n", failures)
		return 1
	}
	return 0
}

// checkDir parses every non-test .go file of dir and returns one
// "file:line: name" entry per undocumented exported symbol, in file order.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a function is package-level or a method
// on an exported type (methods of unexported types are not godoc surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // unusual receiver shape: err on the side of checking
		}
	}
}

// checkGenDecl checks a type/var/const declaration. A doc comment on the
// grouped declaration covers its specs (godoc shows it for each member);
// a bare spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), d.Tok.String(), name.Name)
				}
			}
		}
	}
}
