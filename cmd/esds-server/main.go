// Command esds-server runs one member of a multi-process ESDS cluster over
// TCP: either a single replica (the default) or an interactive front end
// (-client). Every process is given the same ordered list of replica
// addresses; replica i binds the i-th entry.
//
// A three-replica counter cluster on loopback:
//
//	esds-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	esds-server -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	esds-server -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	esds-server -client alice -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// The front end reads one operation per line from stdin (see parseOp for
// the per-data-type syntax), submits it with the previous operation's id as
// its prev set (read-your-writes), and prints the reported value. A
// trailing "!" makes the operation strict: the response is withheld until
// the operation's position in the eventual total order is fixed.
//
// With -shards N (N > 1) the member serves a sharded multi-object keyspace
// instead of one object: process i hosts replica i of every shard over its
// single listener, and each named object routes to a shard by consistent
// hash. Every member must be started with the same -shards value. The
// interactive front end then expects an object name as the first token of
// every line:
//
//	esds-server -id 0 -shards 4 -peers ... &
//	esds-server -id 1 -shards 4 -peers ... &
//	esds-server -id 2 -shards 4 -peers ... &
//	esds-server -client alice -shards 4 -peers ...
//	> cart:42 add 5
//	> cart:42 read !
//
// Causal chaining (prev) is per object; constraints cannot span shards.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"esds/internal/core"
	"esds/internal/dtype"
	"esds/internal/label"
	"esds/internal/ops"
	"esds/internal/placement"
	"esds/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// config is the parsed command line.
type config struct {
	id        int
	peers     []string
	listen    string
	advertise string
	dtName    string
	shards    int
	place     int
	workers   int
	resize    int
	gossip    time.Duration
	client    string
	storeDir  string
	storeSync bool
	recover   bool
	verbose   bool
	opts      core.Options
}

func parseFlags(args []string, stderr io.Writer) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("esds-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var peers string
	fs.IntVar(&cfg.id, "id", -1, "replica id (index into -peers); required unless -client is set")
	fs.StringVar(&peers, "peers", "", "comma-separated replica addresses, indexed by replica id (required)")
	fs.StringVar(&cfg.listen, "listen", "", "bind address (default: the -peers entry for -id; 127.0.0.1:0 for -client)")
	fs.StringVar(&cfg.advertise, "advertise", "",
		"address other processes dial to reach this one (default: the bound address; required when -listen binds a wildcard address like 0.0.0.0)")
	fs.StringVar(&cfg.dtName, "type", "counter", "data type: "+strings.Join(dtype.Names(), "|"))
	fs.IntVar(&cfg.shards, "shards", 1,
		"shard the service into a multi-object keyspace of this many independent clusters; every member must agree")
	fs.IntVar(&cfg.place, "place", 0,
		"replicate each shard on only this many of the -peers members (shard placement, DESIGN.md §13): the placement map assigns every shard's replica slots to members deterministically, and a member stores, serves, and gossips only the shards it hosts; 0 = every member hosts every shard; every member and client must agree")
	fs.IntVar(&cfg.workers, "workers", 0,
		"size of the shard-per-core worker pool executing this member's shard replicas (DESIGN.md §9): each shard is pinned to one worker goroutine; 0 = one worker per schedulable core (GOMAXPROCS), negative = disable (one mailbox goroutine per replica); applies to replica members with -shards > 1")
	fs.IntVar(&cfg.resize, "resize", 0,
		"ADMIN MODE: grow the running keyspace the -peers members serve to this many shards, online (live resharding; DESIGN.md §7), then exit. Member 0 drives the migration; restart members with the new -shards afterwards so a later cold start matches")
	fs.IntVar(&cfg.opts.SnapshotCap, "snapshot-cap", 0,
		"maximum recovery-snapshot size in bytes a replica will send (0 = unlimited); above the cap peers answer with descriptors only and recovery degrades to replay")
	fs.DurationVar(&cfg.gossip, "gossip", 100*time.Millisecond, "gossip period")
	fs.IntVar(&cfg.opts.BatchSize, "batch", 0,
		"enable the batched hot path with this many elements per frame (DESIGN.md §8): front ends pack submissions into BatchRequestMsg, replicas batch responses and coalesce gossip; 0 or 1 = unbatched (every message its own frame); every member must agree")
	fs.DurationVar(&cfg.opts.BatchDelay, "batch-delay", 0,
		"longest a partially filled batch may wait before flushing (default 1ms for front ends when -batch is on; 0 flushes coalesced gossip every tick); requires -batch > 1")
	fs.StringVar(&cfg.client, "client", "", "run a front end for this client name instead of a replica")
	fs.StringVar(&cfg.storeDir, "store", "",
		"directory for the §9.3 stable store (locally generated labels and the operation descriptors they name, group-committed; DESIGN.md §10); required for correct crash recovery with -recover")
	fs.BoolVar(&cfg.storeSync, "store-sync", true,
		"fsync the stable store before acknowledging (group commit: one fsync per admission batch); -store-sync=false acknowledges once records reach the OS page cache — survives kill -9 but NOT power loss")
	fs.BoolVar(&cfg.recover, "recover", false,
		"start in §9.3 recovery: ask every peer for fresh state (and a snapshot, with -snapshot) before serving; use when restarting a crashed replica")
	fs.BoolVar(&cfg.verbose, "verbose", false, "log transport diagnostics to stderr")
	fs.BoolVar(&cfg.opts.Memoize, "memoize", true, "memoize the solid prefix (§10.1)")
	fs.BoolVar(&cfg.opts.Prune, "prune", true, "prune descriptors of memoized stable operations (§10.2)")
	fs.BoolVar(&cfg.opts.Snapshot, "snapshot", true,
		"answer recovery requests with a state snapshot of the memoized prefix (makes -prune composable with -recover); every member must agree — a -prune member that refuses snapshots strands recovering peers")
	fs.BoolVar(&cfg.opts.Commute, "commute", false, "answer non-strict operations from the current state (§10.3)")
	fs.BoolVar(&cfg.opts.IncrementalGossip, "incremental", false,
		"send gossip deltas instead of full state (§10.4; requires reliable FIFO channels — a TCP reconnect loses deltas, so leave this off unless the network is trusted)")
	fs.BoolVar(&cfg.opts.AdaptiveBatch, "adaptive-batch", true,
		"adapt every batch target inside [1, -batch] from observed queue depth (DESIGN.md §12): front-end submission buffers and per-peer gossip coalescers grow toward -batch under load and decay toward 1 when idle; no effect unless -batch > 1")
	fs.BoolVar(&cfg.opts.CompactGossip, "compact-gossip", true,
		"offer the compact gossip wire encoding (DESIGN.md §12: client-id interning, label deltas against a batch base, descriptor dedup), used per connection only when both ends announce it — peers without the feature keep receiving legacy frames, so mixed-version clusters interoperate")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if peers == "" {
		return cfg, fmt.Errorf("-peers is required")
	}
	cfg.peers = strings.Split(peers, ",")
	for i, p := range cfg.peers {
		cfg.peers[i] = strings.TrimSpace(p)
		if cfg.peers[i] == "" {
			return cfg, fmt.Errorf("-peers entry %d is empty", i)
		}
	}
	if _, ok := dtype.ByName(cfg.dtName); !ok {
		return cfg, fmt.Errorf("unknown data type %q (have %s)", cfg.dtName, strings.Join(dtype.Names(), ", "))
	}
	if cfg.shards < 1 {
		return cfg, fmt.Errorf("-shards %d must be at least 1", cfg.shards)
	}
	if cfg.place < 0 {
		return cfg, fmt.Errorf("-place %d is negative; use 0 for full replication", cfg.place)
	}
	if cfg.place > len(cfg.peers) {
		return cfg, fmt.Errorf("-place %d wants more replicas per shard than the fleet has members (%d)", cfg.place, len(cfg.peers))
	}
	if cfg.gossip <= 0 {
		return cfg, fmt.Errorf("-gossip %v must be positive: the §9.1 liveness assumption needs a gossip round in every bounded interval", cfg.gossip)
	}
	if cfg.opts.SnapshotCap < 0 {
		return cfg, fmt.Errorf("-snapshot-cap %d is negative; use 0 for unlimited", cfg.opts.SnapshotCap)
	}
	if cfg.opts.BatchSize < 0 {
		return cfg, fmt.Errorf("-batch %d is negative; use 0 or 1 for the unbatched hot path", cfg.opts.BatchSize)
	}
	if cfg.opts.BatchDelay < 0 {
		return cfg, fmt.Errorf("-batch-delay %v is negative", cfg.opts.BatchDelay)
	}
	if cfg.opts.BatchDelay > 0 && cfg.opts.BatchSize <= 1 {
		return cfg, fmt.Errorf("-batch-delay %v needs -batch > 1: without batching there is nothing to flush", cfg.opts.BatchDelay)
	}
	if cfg.resize < 0 {
		return cfg, fmt.Errorf("-resize %d is negative", cfg.resize)
	}
	if cfg.resize > 0 {
		if cfg.resize < 2 {
			return cfg, fmt.Errorf("-resize %d: a keyspace can only grow to 2 or more shards", cfg.resize)
		}
		if cfg.client != "" || cfg.id >= 0 || cfg.recover || cfg.storeDir != "" || cfg.place > 0 {
			return cfg, fmt.Errorf("-resize is an admin command: it takes only -peers (and optionally -verbose), not -client/-id/-recover/-store/-place")
		}
		return cfg, nil
	}
	if cfg.client != "" && (cfg.recover || cfg.storeDir != "") {
		return cfg, fmt.Errorf("-recover and -store apply to replicas, not -client front ends")
	}
	if cfg.recover && cfg.storeDir == "" {
		return cfg, fmt.Errorf("-recover requires -store: without persisted labels a recovered replica can re-issue a pre-crash label and split the total order (§9.3)")
	}
	if !cfg.storeSync && cfg.storeDir == "" {
		return cfg, fmt.Errorf("-store-sync=false needs -store: there is no stable store to skip syncing")
	}
	if cfg.client == "" {
		if cfg.id < 0 || cfg.id >= len(cfg.peers) {
			return cfg, fmt.Errorf("-id %d out of range for %d peers", cfg.id, len(cfg.peers))
		}
		if cfg.listen == "" {
			cfg.listen = cfg.peers[cfg.id]
		}
	} else if cfg.listen == "" {
		cfg.listen = "127.0.0.1:0"
	}
	return cfg, nil
}

// checkRecoverableStore guards -recover against a fresh or missing -store
// directory: recovery without the pre-crash labels is NOT a restart — a
// recovered replica could re-issue a label it used before the data loss
// and split the total order (§9.3). A genuinely new member should join
// with -store but WITHOUT -recover.
func checkRecoverableStore(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("-recover: cannot read -store directory %q: %w (a replica can only recover against the store it crashed with)", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".labels") {
			return nil
		}
	}
	return fmt.Errorf("-recover: -store directory %q holds no label files — this is a fresh store, and recovering against it could re-issue pre-crash labels (§9.3); start without -recover to join as a new member", dir)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "esds-server: %v\n", err)
		return 2
	}
	core.RegisterWire()
	registerCtlWire()
	if cfg.resize > 0 {
		return runResizeAdmin(cfg, stdout, stderr)
	}
	if cfg.recover {
		if err := checkRecoverableStore(cfg.storeDir); err != nil {
			fmt.Fprintf(stderr, "esds-server: %v\n", err)
			return 2
		}
	}
	dt, _ := dtype.ByName(cfg.dtName)

	// Every shard's replica i lives behind the same member address: shards
	// share each process's single listener, kept apart by shard-qualified
	// node names. Member control nodes (ctl:<i>) carry the resize admin
	// protocol. Under -place the replica entries come from the placement
	// map instead (ApplyPlacement below): slot k of a shard belongs to the
	// member the placement assigns it, not to member k.
	var place *placement.Placement
	if cfg.place > 0 {
		place = placement.New(cfg.shards, cfg.place, len(cfg.peers))
	}
	peerTable := make(map[transport.NodeID]string, len(cfg.peers)*cfg.shards)
	for i, addr := range cfg.peers {
		peerTable[ctlNode(i)] = addr
		if place != nil {
			continue
		}
		if cfg.client == "" && i == cfg.id {
			continue
		}
		for s := 0; s < cfg.shards; s++ {
			peerTable[core.ReplicaNodeIn(s, label.ReplicaID(i))] = addr
		}
	}
	logf := func(string, ...any) {}
	if cfg.verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}
	// The worker runtime is created before the transport and its Close
	// deferred first, so the LIFO unwind closes the transport (no more
	// deliveries) before the workers drain and stop.
	var rt *core.ShardRuntime
	if cfg.shards > 1 && cfg.client == "" && cfg.workers >= 0 {
		rt = core.NewShardRuntime(cfg.workers)
		defer rt.Close()
	}
	net, err := transport.NewTCPNet(transport.TCPConfig{
		Listen:    cfg.listen,
		Advertise: cfg.advertise,
		Peers:     peerTable,
		Logf:      logf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "esds-server: %v\n", err)
		return 1
	}
	defer net.Close()
	if place != nil {
		core.ApplyPlacement(net, place, cfg.peers)
	}

	local := []int{}
	if cfg.client == "" {
		local = []int{cfg.id}
	}
	if cfg.shards > 1 || place != nil {
		return runSharded(cfg, dt, net, rt, local, place, stdin, stdout, stderr)
	}
	var stores []core.StableStore
	var fileStores []*core.FileStableStore
	if cfg.storeDir != "" {
		st, err := openStore(cfg.storeDir, 0, cfg.id, !cfg.storeSync)
		if err != nil {
			fmt.Fprintf(stderr, "esds-server: %v\n", err)
			return 1
		}
		defer st.Close()
		stores = make([]core.StableStore, len(cfg.peers))
		stores[cfg.id] = st
		fileStores = append(fileStores, st)
	}
	cluster := core.NewCluster(core.ClusterConfig{
		Replicas:      len(cfg.peers),
		DataType:      dt,
		Network:       net,
		Options:       cfg.opts,
		Stores:        stores,
		LocalReplicas: local,
	})
	defer cluster.Close()
	if cfg.client == "" {
		// Unsharded members still answer the resize admin protocol — with a
		// clear refusal, so `esds-server -resize` fails fast instead of
		// timing out against a cluster that cannot reshard.
		(&memberCtl{id: cfg.id, net: net, ks: nil, stdout: stdout, stderr: stderr}).register()
	}
	net.Start()

	if cfg.client != "" {
		// The retransmission ticker is the liveness mechanism against frames
		// lost on the real network (§6.2); without it a lost request or
		// response would strand its operation until the deadline.
		cluster.StartLiveRetransmit(250 * time.Millisecond)
		if cfg.opts.BatchSize > 1 {
			cluster.StartLiveBatchFlush(cfg.opts.FlushPeriod())
		}
		return runClient(cfg, cluster, stdin, stdout, stderr)
	}

	cluster.StartLiveGossip(cfg.gossip)
	if cfg.recover {
		startRecovery(cluster.LocalReplicas(), cfg.gossip, stdout)
	}
	// READY tells wrappers (and the integration test) that the replica is
	// registered and accepting connections on the printed address.
	fmt.Fprintf(stdout, "READY replica=%d addr=%s type=%s\n", cfg.id, net.Addr(), cfg.dtName)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigc:
		return 0
	case err := <-storeFailure(fileStores):
		fmt.Fprintf(stderr, "esds-server: stable store failed: %v; shutting down — the replica can no longer recover safely\n", err)
		return 1
	}
}

// openStore opens the file stable store for one (shard, replica) pair
// under dir, creating dir if needed.
func openStore(dir string, shard, id int, noSync bool) (*core.FileStableStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating -store directory: %w", err)
	}
	return core.OpenFileStableStoreWith(
		filepath.Join(dir, fmt.Sprintf("s%d-replica-%d.labels", shard, id)),
		core.FileStoreOptions{NoSync: noSync})
}

// startRecovery begins the §9.3 handshake on every local replica and keeps
// re-issuing it until it completes: the initial recovery requests race the
// peers' listeners (and, on a lossy network, can simply be dropped), and a
// request lost before any ack arrives would otherwise strand the replica
// in recovery forever. Retries go through RetryRecovery, which keeps the
// acks already collected and no-ops once the handshake is done. When every
// local replica has recovered, a RECOVERED status line reports how the
// history came back (snapshots installed, operations seeded from them,
// descriptors retained) — wrappers and the multi-process tests read it to
// confirm the snapshot path actually ran.
func startRecovery(replicas []*core.Replica, period time.Duration, stdout io.Writer) {
	for _, r := range replicas {
		r.Recover()
	}
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	go func() {
		ticker := time.NewTicker(2 * period)
		defer ticker.Stop()
		for range ticker.C {
			waiting := false
			for _, r := range replicas {
				if r.Recovering() {
					waiting = true
					r.RetryRecovery()
				}
			}
			if !waiting {
				var m core.ReplicaMetrics
				for _, r := range replicas {
					m.Add(r.Metrics())
				}
				fmt.Fprintf(stdout, "RECOVERED replicas=%d snapshots=%d seeded=%d retained=%d\n",
					len(replicas), m.SnapshotsInstalled, m.SnapshotOpsSeeded, m.RetainedOps)
				return
			}
		}
	}()
}

// storeFailure watches the stable stores and yields the first write error:
// a replica that cannot persist its labels must fail-stop — continuing
// would advertise recoverability the §9.3 protocol can no longer deliver
// (a label lost from the store can be re-issued after a crash, splitting
// the total order).
func storeFailure(stores []*core.FileStableStore) <-chan error {
	if len(stores) == 0 {
		return nil
	}
	ch := make(chan error, 1)
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for range ticker.C {
			for _, st := range stores {
				if err := st.Err(); err != nil {
					ch <- err
					return
				}
			}
		}
	}()
	return ch
}

// runSharded is the -shards N > 1 (or -place) path: the member hosts its
// replica id in every shard of a multi-object keyspace — or, when placed,
// only the replica slots the placement map assigns it (or a keyspace front
// end, with -client).
func runSharded(cfg config, dt dtype.DataType, net *transport.TCPNet, rt *core.ShardRuntime, local []int, place *placement.Placement, stdin io.Reader, stdout, stderr io.Writer) int {
	var storeFor func(shard, replica int) core.StableStore
	var storeErr error
	var stores []*core.FileStableStore
	// Registered before the keyspace exists (and before defer ks.Close), so
	// the LIFO order closes the store files only after every replica has
	// stopped writing labels.
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	if cfg.storeDir != "" && cfg.client == "" {
		storeFor = func(shard, replica int) core.StableStore {
			// Placed keyspaces only ask for hosted slots (which need not be
			// slot cfg.id); full-replication members persist only their own
			// replica id.
			if (place == nil && replica != cfg.id) || storeErr != nil {
				return nil
			}
			st, err := openStore(cfg.storeDir, shard, replica, !cfg.storeSync)
			if err != nil {
				storeErr = err
				return nil
			}
			stores = append(stores, st)
			return st
		}
	}
	replicas := len(cfg.peers)
	member := -1
	if place != nil {
		replicas = cfg.place
		if cfg.client == "" {
			member = cfg.id
		}
	}
	ks := core.NewKeyspace(core.KeyspaceConfig{
		Shards:        cfg.shards,
		Replicas:      replicas,
		DataType:      dt,
		Network:       net,
		Options:       cfg.opts,
		LocalReplicas: local,
		StoreFor:      storeFor,
		Runtime:       rt,
		Placement:     place,
		Member:        member,
		// The fleet size is pinned by -peers; a wrong-member refusal naming
		// a larger fleet means this process's address list is stale, and
		// only a restart can supply the missing addresses.
		OnStalePlacement: func(members int) {
			fmt.Fprintf(stderr, "esds-server: placement is stale: the fleet reports %d members but -peers names %d; restart with the full member list\n",
				members, len(cfg.peers))
		},
		// Online growth (a local Resize or a -resize admin command, or a
		// redirect-taught client following one): the new shards' remote
		// replicas live behind the same member addresses as every other
		// shard's. Placed keyspaces extend the placement map the same way
		// NewKeyspace's buildShard does (Extend is deterministic), then
		// re-point every slot. Runs under the keyspace lock — no ks calls.
		OnGrow: func(oldShards, newShards int) {
			if place != nil {
				place = place.Extend(newShards)
				core.ApplyPlacement(net, place, cfg.peers)
				return
			}
			for s := oldShards; s < newShards; s++ {
				for i, addr := range cfg.peers {
					if cfg.client == "" && i == cfg.id {
						continue
					}
					net.SetPeer(core.ReplicaNodeIn(s, label.ReplicaID(i)), addr)
				}
			}
		},
	})
	defer ks.Close()
	if storeErr != nil {
		fmt.Fprintf(stderr, "esds-server: %v\n", storeErr)
		return 1
	}
	if cfg.client == "" {
		(&memberCtl{id: cfg.id, net: net, ks: ks, stdout: stdout, stderr: stderr}).register()
	}
	net.Start()

	if cfg.client != "" {
		ks.StartLiveRetransmit(250 * time.Millisecond)
		if cfg.opts.BatchSize > 1 {
			ks.StartLiveBatchFlush(cfg.opts.FlushPeriod())
		}
		return runShardedClient(cfg, ks, stdin, stdout, stderr)
	}

	ks.StartLiveGossip(cfg.gossip)
	if cfg.opts.BatchSize > 1 {
		// Replica members create front ends too: a -resize admin command
		// makes member 0 the migration driver, whose strict KeyInstall
		// submissions go through keyspace front ends — buffered under
		// batching, they need the flush ticker (and retransmission against
		// lost install frames) or the INSTALL phase stalls until the
		// resize deadline.
		ks.StartLiveBatchFlush(cfg.opts.FlushPeriod())
		ks.StartLiveRetransmit(250 * time.Millisecond)
	}
	if cfg.recover {
		var all []*core.Replica
		for s := 0; s < ks.NumShards(); s++ {
			all = append(all, ks.Shard(s).LocalReplicas()...)
		}
		startRecovery(all, cfg.gossip, stdout)
	}
	ready := fmt.Sprintf("READY replica=%d shards=%d addr=%s type=%s", cfg.id, cfg.shards, net.Addr(), cfg.dtName)
	if place != nil {
		ready += fmt.Sprintf(" place=%d hosted=%d", cfg.place, len(place.ShardsOf(cfg.id)))
	}
	fmt.Fprintln(stdout, ready)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigc:
		return 0
	case err := <-storeFailure(stores):
		fmt.Fprintf(stderr, "esds-server: stable store failed: %v; shutting down — the replica can no longer recover safely\n", err)
		return 1
	}
}

// runShardedClient reads "OBJECT op args... [!]" lines and submits each
// operation through the keyspace router, chaining prev per object. The
// router is resize-aware: when a `-resize` admin command migrates an
// object to a new shard, operations follow it automatically (this process
// learns the new topology from Redirect replies; OnGrow extends the peer
// table), so a front end started with a stale -shards keeps working.
func runShardedClient(cfg config, ks *core.Keyspace, stdin io.Reader, stdout, stderr io.Writer) int {
	fmt.Fprintf(stdout, "READY client=%s shards=%d type=%s\n", cfg.client, cfg.shards, cfg.dtName)
	scanner := bufio.NewScanner(stdin)
	router := ks.Client(cfg.client)
	prev := make(map[string][]ops.ID)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		strict := strings.HasSuffix(line, "!")
		fields := strings.Fields(strings.TrimSuffix(line, "!"))
		if len(fields) < 2 {
			fmt.Fprintf(stderr, "esds-server: want \"OBJECT op args...\", got %q\n", line)
			continue
		}
		object := fields[0]
		op, err := parseOp(cfg.dtName, strings.Join(fields[1:], " "))
		if err != nil {
			fmt.Fprintf(stderr, "esds-server: %v\n", err)
			continue
		}
		x, v, err := submitWithDeadline(router, ks.WrapOp(object, op), prev[object], strict, 10*time.Second)
		if err != nil {
			fmt.Fprintf(stderr, "esds-server: %v\n", err)
			return 1
		}
		prev[object] = []ops.ID{x.ID}
		fmt.Fprintf(stdout, "%s@%d %v = %v\n", object, ks.ShardOf(object), x.ID, v)
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(stderr, "esds-server: reading stdin: %v\n", err)
		return 1
	}
	return 0
}

// runClient reads operations from stdin and submits them through a front
// end, chaining each operation's id into the next one's prev set.
func runClient(cfg config, cluster *core.Cluster, stdin io.Reader, stdout, stderr io.Writer) int {
	fe := cluster.FrontEnd(cfg.client)
	fmt.Fprintf(stdout, "READY client=%s type=%s\n", cfg.client, cfg.dtName)
	scanner := bufio.NewScanner(stdin)
	var prev []ops.ID
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		strict := strings.HasSuffix(line, "!")
		op, err := parseOp(cfg.dtName, strings.TrimSuffix(line, "!"))
		if err != nil {
			fmt.Fprintf(stderr, "esds-server: %v\n", err)
			continue
		}
		x, v, err := submitWithDeadline(fe, op, prev, strict, 10*time.Second)
		if err != nil {
			fmt.Fprintf(stderr, "esds-server: %v\n", err)
			return 1
		}
		prev = []ops.ID{x.ID}
		fmt.Fprintf(stdout, "%v = %v\n", x.ID, v)
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(stderr, "esds-server: reading stdin: %v\n", err)
		return 1
	}
	return 0
}

// submitWithDeadline submits one operation and waits for its response or
// the deadline. Retransmission against message loss is handled by the
// cluster-level ticker (StartLiveRetransmit), so the only terminal
// outcomes are a response, a close error, or the timeout.
func submitWithDeadline(sub core.Submitter, op dtype.Operator, prev []ops.ID, strict bool, timeout time.Duration) (ops.Operation, dtype.Value, error) {
	ch := make(chan core.Response, 1)
	x := sub.Submit(op, prev, strict, func(r core.Response) { ch <- r })
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case r := <-ch:
		return x, r.Value, r.Err
	case <-deadline.C:
		return x, nil, fmt.Errorf("operation %v timed out after %v", x.ID, timeout)
	}
}

// parseOp parses one operation line for the named data type:
//
//	counter:   add N | double | read
//	register:  write V | read
//	set:       add E | remove E | contains E | size
//	log:       append E | read | len
//	bank:      deposit ACCT N | withdraw ACCT N | balance ACCT
//	directory: bind NAME | unbind NAME | setattr NAME KEY VAL |
//	           getattr NAME KEY | lookup NAME | list
func parseOp(dtName, line string) (dtype.Operator, error) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return nil, fmt.Errorf("empty operation")
	}
	bad := func() (dtype.Operator, error) {
		return nil, fmt.Errorf("bad %s operation %q", dtName, line)
	}
	num := func(s string) (int64, bool) {
		n, err := strconv.ParseInt(s, 10, 64)
		return n, err == nil
	}
	switch dtName {
	case "counter":
		switch {
		case f[0] == "add" && len(f) == 2:
			if n, ok := num(f[1]); ok {
				return dtype.CtrAdd{N: n}, nil
			}
		case f[0] == "double" && len(f) == 1:
			return dtype.CtrDouble{}, nil
		case f[0] == "read" && len(f) == 1:
			return dtype.CtrRead{}, nil
		}
	case "register":
		switch {
		case f[0] == "write" && len(f) == 2:
			return dtype.RegWrite{Val: f[1]}, nil
		case f[0] == "read" && len(f) == 1:
			return dtype.RegRead{}, nil
		}
	case "set":
		switch {
		case f[0] == "add" && len(f) == 2:
			return dtype.SetAdd{Elem: f[1]}, nil
		case f[0] == "remove" && len(f) == 2:
			return dtype.SetRemove{Elem: f[1]}, nil
		case f[0] == "contains" && len(f) == 2:
			return dtype.SetContains{Elem: f[1]}, nil
		case f[0] == "size" && len(f) == 1:
			return dtype.SetSize{}, nil
		}
	case "log":
		switch {
		case f[0] == "append" && len(f) == 2:
			return dtype.LogAppend{Entry: f[1]}, nil
		case f[0] == "read" && len(f) == 1:
			return dtype.LogRead{}, nil
		case f[0] == "len" && len(f) == 1:
			return dtype.LogLen{}, nil
		}
	case "bank":
		switch {
		case f[0] == "deposit" && len(f) == 3:
			if n, ok := num(f[2]); ok {
				return dtype.BankDeposit{Account: f[1], Amount: n}, nil
			}
		case f[0] == "withdraw" && len(f) == 3:
			if n, ok := num(f[2]); ok {
				return dtype.BankWithdraw{Account: f[1], Amount: n}, nil
			}
		case f[0] == "balance" && len(f) == 2:
			return dtype.BankBalance{Account: f[1]}, nil
		}
	case "directory":
		switch {
		case f[0] == "bind" && len(f) == 2:
			return dtype.DirBind{Name: f[1]}, nil
		case f[0] == "unbind" && len(f) == 2:
			return dtype.DirUnbind{Name: f[1]}, nil
		case f[0] == "setattr" && len(f) == 4:
			return dtype.DirSetAttr{Name: f[1], Key: f[2], Val: f[3]}, nil
		case f[0] == "getattr" && len(f) == 3:
			return dtype.DirGetAttr{Name: f[1], Key: f[2]}, nil
		case f[0] == "lookup" && len(f) == 2:
			return dtype.DirLookup{Name: f[1]}, nil
		case f[0] == "list" && len(f) == 1:
			return dtype.DirList{}, nil
		}
	}
	return bad()
}
