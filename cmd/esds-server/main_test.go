package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"esds/internal/core"
	"esds/internal/dtype"
	"esds/internal/label"
	"esds/internal/ops"
	"esds/internal/transport"
)

// TestHelperProcess is not a test: it is the body of a child process
// spawned by the multi-process tests. It runs the real server entry point
// on the arguments after "--".
func TestHelperProcess(t *testing.T) {
	if os.Getenv("ESDS_SERVER_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Exit(run(args, os.Stdin, os.Stdout, os.Stderr))
}

// spawnReplica starts one replica as a separate OS process and waits for
// its READY line.
func spawnReplica(t *testing.T, id int, peers []string, extra ...string) *exec.Cmd {
	t.Helper()
	cmd, _ := spawnReplicaWatch(t, id, peers, extra...)
	return cmd
}

// spawnReplicaWatch is spawnReplica plus a getter over everything the
// replica has printed so far (the recovery test reads the RECOVERED status
// line from it).
func spawnReplicaWatch(t *testing.T, id int, peers []string, extra ...string) (*exec.Cmd, func() string) {
	t.Helper()
	args := []string{"-test.run=TestHelperProcess", "--",
		"-id", fmt.Sprint(id), "-peers", strings.Join(peers, ","), "-gossip", "20ms"}
	args = append(args, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ESDS_SERVER_HELPER=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	var mu sync.Mutex
	var captured strings.Builder
	ready := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(out)
		sawReady := false
		for scanner.Scan() {
			line := scanner.Text()
			mu.Lock()
			captured.WriteString(line)
			captured.WriteByte('\n')
			mu.Unlock()
			if !sawReady && strings.HasPrefix(line, "READY") {
				sawReady = true
				ready <- line
			}
		}
		if !sawReady {
			close(ready)
		}
	}()
	select {
	case line, ok := <-ready:
		if !ok {
			t.Fatalf("replica %d exited before READY", id)
		}
		t.Logf("replica %d: %s", id, line)
	case <-time.After(10 * time.Second):
		t.Fatalf("replica %d did not become ready", id)
	}
	return cmd, func() string {
		mu.Lock()
		defer mu.Unlock()
		return captured.String()
	}
}

// reservePorts binds and immediately releases n loopback ports, returning
// their addresses for the cluster's static peer list.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestThreeProcessCluster is the end-to-end deployment test: three replica
// processes on loopback TCP, driven by a front end in this process. A
// non-strict and a strict operation must both complete, and the strict
// read must observe the causally preceding write.
func TestThreeProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	core.RegisterWire()
	peers := reservePorts(t, 3)
	for i := 0; i < 3; i++ {
		spawnReplica(t, i, peers)
	}

	feNet, err := transport.NewTCPNet(transport.TCPConfig{Listen: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer feNet.Close()
	for i, addr := range peers {
		feNet.SetPeer(core.ReplicaNode(label.ReplicaID(i)), addr)
	}
	cluster := core.NewCluster(core.ClusterConfig{
		Replicas:      3,
		DataType:      dtype.Counter{},
		Network:       feNet,
		LocalReplicas: []int{},
	})
	defer cluster.Close()
	feNet.Start()
	fe := cluster.FrontEnd("itest")
	cluster.StartLiveRetransmit(250 * time.Millisecond)

	add, v, err := submitWithDeadline(fe, dtype.CtrAdd{N: 7}, nil, false, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v != "ok" {
		t.Fatalf("non-strict add returned %v", v)
	}
	_, v, err = submitWithDeadline(fe, dtype.CtrRead{}, []ops.ID{add.ID}, true, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(7) {
		t.Fatalf("strict read returned %v, want 7", v)
	}
}

// TestClientModeAgainstCluster drives the -client stdin/stdout interface
// against a real multi-process cluster.
func TestClientModeAgainstCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	peers := reservePorts(t, 3)
	for i := 0; i < 3; i++ {
		spawnReplica(t, i, peers)
	}

	var stdout strings.Builder
	script := strings.NewReader("add 2\nadd 3\nread!\n")
	code := run([]string{"-client", "cli", "-peers", strings.Join(peers, ",")}, script, &stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("client mode exited %d\noutput:\n%s", code, stdout.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 4 { // READY + three responses
		t.Fatalf("client printed %d lines:\n%s", len(lines), stdout.String())
	}
	// The strict read is causally after both adds (prev chaining), so it
	// must observe 5.
	if !strings.HasSuffix(lines[3], "= 5") {
		t.Fatalf("strict read line = %q, want suffix %q", lines[3], "= 5")
	}
}

// TestKillNineRecoveryWithPruning is the multi-process crash-recovery
// test: a replica process is SIGKILLed mid-load with pruning ON, then
// restarted with -recover against the same stable store. By restart time
// the survivors have pruned the early descriptors, so the rejoined replica
// can only catch up through the §9.3 snapshot transfer. The proof of
// convergence is a strict read pinned to the restarted replica and
// causally ordered after the whole write chain: its value is computed from
// the restarted replica's own history, so it is correct iff the snapshot
// restored every pruned operation.
func TestKillNineRecoveryWithPruning(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	core.RegisterWire()
	peers := reservePorts(t, 3)
	storeDir := t.TempDir()
	procs := make([]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		procs[i] = spawnReplica(t, i, peers, "-store", storeDir)
	}

	feNet, err := transport.NewTCPNet(transport.TCPConfig{Listen: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer feNet.Close()
	for i, addr := range peers {
		feNet.SetPeer(core.ReplicaNode(label.ReplicaID(i)), addr)
	}
	cluster := core.NewCluster(core.ClusterConfig{
		Replicas:      3,
		DataType:      dtype.Counter{},
		Network:       feNet,
		LocalReplicas: []int{},
	})
	defer cluster.Close()
	feNet.Start()
	cluster.StartLiveRetransmit(250 * time.Millisecond)
	fe := cluster.FrontEnd("load")

	// Causally chained adds: each op's prev is its predecessor, so a read
	// ordered after the last add is ordered after ALL of them.
	const preCrash, postCrash = 12, 8
	total := 0
	var last ops.ID
	add := func(n int) {
		x, v, err := submitWithDeadline(fe, dtype.CtrAdd{N: int64(n)}, prevOf(last), false, 15*time.Second)
		if err != nil {
			t.Fatalf("add %d: %v", n, err)
		}
		if v != "ok" {
			t.Fatalf("add %d returned %v", n, v)
		}
		last = x.ID
		total += n
	}
	for i := 1; i <= preCrash; i++ {
		add(i)
	}
	// Let the pre-crash history stabilize and prune at every replica (the
	// gossip period is 20ms; a second is dozens of rounds).
	time.Sleep(1 * time.Second)

	// kill -9: no shutdown path runs; only the stable store survives.
	if err := procs[0].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	procs[0].Wait()

	// Load continues against the survivors (retransmission skips the dead
	// member).
	for i := preCrash + 1; i <= preCrash+postCrash; i++ {
		add(i)
	}

	// Restart replica 0 on the same address with the same store, in
	// recovery mode.
	_, output := spawnReplicaWatch(t, 0, peers, "-store", storeDir, "-recover")

	// A strict read pinned to the restarted replica, ordered after the full
	// chain: answered only once replica 0 has rejoined, and correct only if
	// the snapshot restored the pruned prefix.
	reader := cluster.FrontEnd("reader")
	reader.StickTo(core.ReplicaNode(0))
	_, v, err := submitWithDeadline(reader, dtype.CtrRead{}, prevOf(last), true, 30*time.Second)
	if err != nil {
		t.Fatalf("strict read after restart: %v", err)
	}
	if v != int64(total) {
		t.Fatalf("strict read at restarted replica = %v, want %d: snapshot recovery lost pruned history", v, total)
	}

	// The RECOVERED status line proves how the history came back: the
	// durable journal replays the descriptors replica 0 labeled itself
	// (they show up as retained), and the snapshot transfer must seed the
	// REST — ops labeled at the survivors, whose descriptors were pruned
	// everywhere before the restart. Together they must cover the whole
	// pre-crash history.
	deadline := time.Now().Add(10 * time.Second)
	var recovered string
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(output(), "\n") {
			if strings.HasPrefix(line, "RECOVERED") {
				recovered = line
				break
			}
		}
		if recovered != "" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if recovered == "" {
		t.Fatalf("restarted replica never printed RECOVERED:\n%s", output())
	}
	var nReplicas, snapshots, seeded, retained int
	if _, err := fmt.Sscanf(recovered, "RECOVERED replicas=%d snapshots=%d seeded=%d retained=%d",
		&nReplicas, &snapshots, &seeded, &retained); err != nil {
		t.Fatalf("malformed status line %q: %v", recovered, err)
	}
	if snapshots == 0 || seeded == 0 {
		t.Fatalf("%s: expected a snapshot to seed the peer-labeled pruned history", recovered)
	}
	if seeded+retained < preCrash {
		t.Fatalf("%s: journal replay + snapshot cover %d ops, want the full pre-crash history (%d)", recovered, seeded+retained, preCrash)
	}
	if retained >= preCrash {
		t.Fatalf("%s: restarted replica re-learned %d descriptors — survivors had not pruned, the test no longer exercises snapshot recovery", recovered, retained)
	}
}

// TestKillNineMidBatchDurability is the group-commit durability test
// (DESIGN.md §10): a SINGLE replica on the batched hot path acknowledges a
// stream of non-strict appends, then is SIGKILLed. With no peers, nothing
// was ever gossiped — the stable store's journal is the only place the
// acknowledged operations survive. The restarted replica must answer a
// strict read covering every acknowledged append from its own journal.
// Before descriptors were persisted this test fails: the store held labels
// only, so the VALUES of acknowledged operations died with the process.
func TestKillNineMidBatchDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	core.RegisterWire()
	peers := reservePorts(t, 1)
	storeDir := t.TempDir()
	batchArgs := []string{"-store", storeDir, "-type", "log", "-batch", "8", "-batch-delay", "1ms"}
	proc := spawnReplica(t, 0, peers, batchArgs...)

	feNet, err := transport.NewTCPNet(transport.TCPConfig{Listen: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer feNet.Close()
	feNet.SetPeer(core.ReplicaNode(0), peers[0])
	opts := core.Options{BatchSize: 8, BatchDelay: time.Millisecond}
	cluster := core.NewCluster(core.ClusterConfig{
		Replicas:      1,
		DataType:      dtype.Log{},
		Network:       feNet,
		Options:       opts,
		LocalReplicas: []int{},
	})
	defer cluster.Close()
	feNet.Start()
	cluster.StartLiveRetransmit(250 * time.Millisecond)
	cluster.StartLiveBatchFlush(opts.FlushPeriod())
	fe := cluster.FrontEnd("load")

	// Causally chained appends, every one ACKNOWLEDGED before the kill.
	const acked = 30
	var last ops.ID
	for i := 0; i < acked; i++ {
		x, v, err := submitWithDeadline(fe, dtype.LogAppend{Entry: fmt.Sprintf("d%02d", i)}, prevOf(last), false, 15*time.Second)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if fmt.Sprint(v) != fmt.Sprint(i+1) { // LogAppend answers the new length
			t.Fatalf("append %d returned %v, want %d", i, v, i+1)
		}
		last = x.ID
	}

	// kill -9 mid-batch: no shutdown path, no gossip ever left (n=1). Only
	// the group-commit journal survives.
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	restartArgs := append(append([]string{}, batchArgs...), "-recover")
	spawnReplicaWatch(t, 0, peers, restartArgs...)

	// A strict read causally after the whole chain: answerable only once the
	// journal replay has re-introduced every acknowledged append.
	_, v, err := submitWithDeadline(fe, dtype.LogRead{}, prevOf(last), true, 30*time.Second)
	if err != nil {
		t.Fatalf("strict read after restart: %v (acknowledged appends lost across kill -9)", err)
	}
	s := fmt.Sprint(v)
	if strings.Count(s, "|") != acked-1 {
		t.Fatalf("strict read after restart = %q, want all %d acknowledged appends", s, acked)
	}
	for i := 0; i < acked; i++ {
		if !strings.Contains(s, fmt.Sprintf("d%02d", i)) {
			t.Fatalf("acknowledged append d%02d missing after restart: %q", i, s)
		}
	}
}

// prevOf wraps a possibly-zero id as a prev set.
func prevOf(id ops.ID) []ops.ID {
	if id == (ops.ID{}) {
		return nil
	}
	return []ops.ID{id}
}

func TestParseOp(t *testing.T) {
	good := []struct {
		dt, line string
		want     dtype.Operator
	}{
		{"counter", "add 5", dtype.CtrAdd{N: 5}},
		{"counter", "double", dtype.CtrDouble{}},
		{"counter", "read", dtype.CtrRead{}},
		{"register", "write hello", dtype.RegWrite{Val: "hello"}},
		{"register", "read", dtype.RegRead{}},
		{"set", "add x", dtype.SetAdd{Elem: "x"}},
		{"set", "contains x", dtype.SetContains{Elem: "x"}},
		{"log", "append e1", dtype.LogAppend{Entry: "e1"}},
		{"log", "len", dtype.LogLen{}},
		{"bank", "deposit acct 100", dtype.BankDeposit{Account: "acct", Amount: 100}},
		{"bank", "balance acct", dtype.BankBalance{Account: "acct"}},
		{"directory", "setattr a k v", dtype.DirSetAttr{Name: "a", Key: "k", Val: "v"}},
		{"directory", "list", dtype.DirList{}},
	}
	for _, tc := range good {
		got, err := parseOp(tc.dt, tc.line)
		if err != nil {
			t.Errorf("parseOp(%q, %q): %v", tc.dt, tc.line, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseOp(%q, %q) = %#v, want %#v", tc.dt, tc.line, got, tc.want)
		}
	}
	bad := []struct{ dt, line string }{
		{"counter", "add"},
		{"counter", "add five"},
		{"counter", "frobnicate"},
		{"register", "write"},
		{"bank", "deposit acct"},
		{"nosuch", "read"},
	}
	for _, tc := range bad {
		if op, err := parseOp(tc.dt, tc.line); err == nil {
			t.Errorf("parseOp(%q, %q) = %#v, want error", tc.dt, tc.line, op)
		}
	}
}

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{}, "-peers is required"},
		{[]string{"-peers", "a:1,b:2"}, "-id -1 out of range"},
		{[]string{"-peers", "a:1,b:2", "-id", "5"}, "-id 5 out of range"},
		{[]string{"-peers", "a:1,,b:2", "-id", "0"}, "entry 1 is empty"},
		{[]string{"-peers", "a:1", "-id", "0", "-type", "nosuch"}, "unknown data type"},
		{[]string{"-peers", "a:1,b:2", "-client", "c", "-recover"}, "apply to replicas"},
		{[]string{"-peers", "a:1,b:2", "-client", "c", "-store", "/tmp/x"}, "apply to replicas"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-recover"}, "-recover requires -store"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-store-sync=false"}, "needs -store"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-shards", "0"}, "-shards 0 must be at least 1"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-shards", "-3"}, "must be at least 1"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-gossip", "-5ms"}, "-gossip -5ms must be positive"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-gossip", "0s"}, "must be positive"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-snapshot-cap", "-1"}, "-snapshot-cap -1 is negative"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-batch", "-4"}, "-batch -4 is negative"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-batch", "8", "-batch-delay", "-1ms"}, "-batch-delay -1ms is negative"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-batch-delay", "2ms"}, "needs -batch > 1"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-batch", "1", "-batch-delay", "2ms"}, "needs -batch > 1"},
		{[]string{"-peers", "a:1,b:2", "-resize", "-2"}, "-resize -2 is negative"},
		{[]string{"-peers", "a:1,b:2", "-resize", "1"}, "grow to 2 or more"},
		{[]string{"-peers", "a:1,b:2", "-resize", "4", "-id", "0"}, "admin command"},
		{[]string{"-peers", "a:1,b:2", "-resize", "4", "-client", "c"}, "admin command"},
		{[]string{"-peers", "a:1,b:2", "-resize", "4", "-store", "/tmp/x"}, "admin command"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-place", "-1"}, "-place -1 is negative"},
		{[]string{"-peers", "a:1,b:2", "-id", "0", "-place", "3"}, "more replicas per shard than the fleet has members"},
		{[]string{"-peers", "a:1,b:2", "-resize", "4", "-place", "2"}, "admin command"},
	}
	for _, tc := range cases {
		_, err := parseFlags(tc.args, os.Stderr)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseFlags(%v) err = %v, want containing %q", tc.args, err, tc.wantErr)
		}
	}
	cfg, err := parseFlags([]string{"-peers", "a:1,b:2,c:3", "-id", "1"}, os.Stderr)
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if cfg.listen != "b:2" {
		t.Errorf("listen defaulted to %q, want the replica's own peers entry", cfg.listen)
	}
	if _, err := parseFlags([]string{"-peers", "a:1,b:2", "-resize", "4"}, os.Stderr); err != nil {
		t.Errorf("valid -resize admin flags rejected: %v", err)
	}
	cfg, err = parseFlags([]string{"-peers", "a:1,b:2", "-id", "0", "-batch", "32", "-batch-delay", "2ms"}, os.Stderr)
	if err != nil {
		t.Fatalf("valid batching flags rejected: %v", err)
	}
	if cfg.opts.BatchSize != 32 || cfg.opts.BatchDelay != 2*time.Millisecond {
		t.Errorf("batch knobs = %d/%v, want 32/2ms", cfg.opts.BatchSize, cfg.opts.BatchDelay)
	}
}

// TestRecoverRejectsFreshStore pins the -recover guard: recovering
// against a store directory with no persisted labels is not a restart —
// it could re-issue pre-crash labels (§9.3) — and must be refused with a
// clear error instead of silently joining.
func TestRecoverRejectsFreshStore(t *testing.T) {
	fresh := t.TempDir()
	var stderr strings.Builder
	code := run([]string{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-store", fresh, "-recover"},
		strings.NewReader(""), io.Discard, &stderr)
	if code == 0 {
		t.Fatal("recover on a fresh store directory succeeded")
	}
	if !strings.Contains(stderr.String(), "no label files") {
		t.Fatalf("error does not explain the fresh store: %q", stderr.String())
	}
	// A missing directory is refused the same way.
	stderr.Reset()
	code = run([]string{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-store", fresh + "/nope", "-recover"},
		strings.NewReader(""), io.Discard, &stderr)
	if code == 0 || !strings.Contains(stderr.String(), "cannot read -store") {
		t.Fatalf("missing store dir: code=%d stderr=%q", code, stderr.String())
	}
}

// TestResizeAdminAgainstCluster is the multi-process live-resharding
// test: three members serving a 2-shard keyspace are grown to 4 shards by
// the `-resize` admin command while holding state, and a STALE front end
// (started with -shards 2, never told about the resize) keeps operating —
// it learns the new topology from Redirect replies and reads back every
// object's pre-resize state through the migration.
func TestResizeAdminAgainstCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	// Members run the batched hot path (DESIGN.md §8): member 0 becomes
	// the migration driver, whose strict KeyInstall submissions ride
	// batch buffers — the replica-mode flush ticker must move them, or
	// INSTALL stalls until the resize deadline (a live-drive regression).
	// The clients below stay unbatched, proving the mixed config holds.
	peers := reservePorts(t, 3)
	var watch0 func() string
	for i := 0; i < 3; i++ {
		if i == 0 {
			_, watch0 = spawnReplicaWatch(t, i, peers, "-shards", "2", "-batch", "8", "-batch-delay", "1ms")
		} else {
			spawnReplica(t, i, peers, "-shards", "2", "-batch", "8", "-batch-delay", "1ms")
		}
	}

	// Seed objects through a (stale-to-be) client.
	var out1 strings.Builder
	seed := "obj:a add 1\nobj:b add 2\nobj:c add 3\nobj:d add 4\nobj:a read!\n"
	if code := run([]string{"-client", "seed", "-shards", "2", "-peers", strings.Join(peers, ",")},
		strings.NewReader(seed), &out1, os.Stderr); code != 0 {
		t.Fatalf("seeding client exited %d\n%s", code, out1.String())
	}

	// Grow 2 → 4 online.
	var adminOut strings.Builder
	if code := run([]string{"-resize", "4", "-peers", strings.Join(peers, ",")},
		strings.NewReader(""), &adminOut, os.Stderr); code != 0 {
		t.Fatalf("resize admin exited %d\n%s", code, adminOut.String())
	}
	if !strings.Contains(adminOut.String(), "RESIZED shards=4") {
		t.Fatalf("admin output lacks RESIZED line:\n%s", adminOut.String())
	}
	// The member's own RESIZED status line lands asynchronously: the admin
	// reply races the replica's stdout flush, so poll rather than snapshot.
	for deadline := time.Now().Add(10 * time.Second); !strings.Contains(watch0(), "RESIZED shards=4"); {
		if time.Now().After(deadline) {
			t.Fatalf("member 0 never printed its RESIZED line:\n%s", watch0())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A stale client (still -shards 2) must read every object back and
	// write through the migration.
	var out2 strings.Builder
	check := "obj:a read!\nobj:b read!\nobj:c read!\nobj:d read!\nobj:d add 6\nobj:d read!\n"
	if code := run([]string{"-client", "stale", "-shards", "2", "-peers", strings.Join(peers, ",")},
		strings.NewReader(check), &out2, os.Stderr); code != 0 {
		t.Fatalf("stale client exited %d\n%s", code, out2.String())
	}
	lines := strings.Split(strings.TrimSpace(out2.String()), "\n")
	if len(lines) != 7 { // READY + six responses
		t.Fatalf("stale client printed %d lines:\n%s", len(lines), out2.String())
	}
	wants := []string{"= 1", "= 2", "= 3", "= 4", "= ok", "= 10"}
	for i, w := range wants {
		if !strings.HasSuffix(lines[i+1], w) {
			t.Fatalf("stale line %d = %q, want suffix %q\nall:\n%s", i+1, lines[i+1], w, out2.String())
		}
	}

	// A fresh client started with the NEW shard count works too.
	var out3 strings.Builder
	if code := run([]string{"-client", "fresh", "-shards", "4", "-peers", strings.Join(peers, ",")},
		strings.NewReader("obj:d read!\n"), &out3, os.Stderr); code != 0 {
		t.Fatalf("fresh client exited %d\n%s", code, out3.String())
	}
	if !strings.HasSuffix(strings.TrimSpace(out3.String()), "= 10") {
		t.Fatalf("fresh client read = %q, want suffix \"= 10\"", out3.String())
	}
}

// TestShardedClientModeAgainstCluster drives the -shards keyspace variant
// end to end: three member processes each hosting their replica of every
// shard, and a keyspace front end routing named objects by consistent
// hash. Strict reads carry per-object prev chains, so each must observe
// exactly its own object's writes.
func TestShardedClientModeAgainstCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	peers := reservePorts(t, 3)
	for i := 0; i < 3; i++ {
		spawnReplica(t, i, peers, "-shards", "4")
	}

	var stdout strings.Builder
	script := strings.NewReader("cart:1 add 2\ncart:1 add 3\ncart:2 add 10\ncart:1 read!\ncart:2 read!\n")
	code := run([]string{"-client", "cli", "-shards", "4", "-peers", strings.Join(peers, ",")}, script, &stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("sharded client mode exited %d\noutput:\n%s", code, stdout.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 6 { // READY + five responses
		t.Fatalf("client printed %d lines:\n%s", len(lines), stdout.String())
	}
	if !strings.HasPrefix(lines[0], "READY client=cli shards=4") {
		t.Fatalf("READY line = %q", lines[0])
	}
	if !strings.HasSuffix(lines[4], "= 5") {
		t.Fatalf("strict read of cart:1 = %q, want suffix %q", lines[4], "= 5")
	}
	if !strings.HasSuffix(lines[5], "= 10") {
		t.Fatalf("strict read of cart:2 = %q, want suffix %q", lines[5], "= 10")
	}
	// Object lines carry the owning shard; the two objects' shard
	// assignments must be consistent between front end and replicas (the
	// responses proved routing worked — this checks the printed form).
	if !strings.HasPrefix(lines[4], "cart:1@") || !strings.HasPrefix(lines[5], "cart:2@") {
		t.Fatalf("response lines lack object@shard prefixes:\n%s", stdout.String())
	}
}

// TestPlacedClientModeAgainstCluster runs a placed fleet (-place: each shard
// on 2 of the 3 member processes, placement map agreed from the flags alone)
// and drives it through a -client front end, which must route every object
// to a hosting member. The strict reads prove the placed deployment serves
// the full keyspace even though no single member hosts it.
func TestPlacedClientModeAgainstCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	peers := reservePorts(t, 3)
	for i := 0; i < 3; i++ {
		spawnReplica(t, i, peers, "-shards", "4", "-place", "2")
	}

	var stdout strings.Builder
	script := strings.NewReader("cart:1 add 2\ncart:1 add 3\ncart:2 add 10\ncart:1 read!\ncart:2 read!\n")
	code := run([]string{"-client", "cli", "-shards", "4", "-place", "2", "-peers", strings.Join(peers, ",")}, script, &stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("placed client mode exited %d\noutput:\n%s", code, stdout.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 6 { // READY + five responses
		t.Fatalf("client printed %d lines:\n%s", len(lines), stdout.String())
	}
	if !strings.HasSuffix(lines[4], "= 5") {
		t.Fatalf("strict read of cart:1 = %q, want suffix %q", lines[4], "= 5")
	}
	if !strings.HasSuffix(lines[5], "= 10") {
		t.Fatalf("strict read of cart:2 = %q, want suffix %q", lines[5], "= 10")
	}
}
