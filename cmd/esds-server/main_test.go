package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"esds/internal/core"
	"esds/internal/dtype"
	"esds/internal/label"
	"esds/internal/ops"
	"esds/internal/transport"
)

// TestHelperProcess is not a test: it is the body of a child process
// spawned by the multi-process tests. It runs the real server entry point
// on the arguments after "--".
func TestHelperProcess(t *testing.T) {
	if os.Getenv("ESDS_SERVER_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Exit(run(args, os.Stdin, os.Stdout, os.Stderr))
}

// spawnReplica starts one replica as a separate OS process and waits for
// its READY line.
func spawnReplica(t *testing.T, id int, peers []string, extra ...string) *exec.Cmd {
	t.Helper()
	args := []string{"-test.run=TestHelperProcess", "--",
		"-id", fmt.Sprint(id), "-peers", strings.Join(peers, ","), "-gossip", "20ms"}
	args = append(args, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ESDS_SERVER_HELPER=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	ready := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(out)
		for scanner.Scan() {
			if strings.HasPrefix(scanner.Text(), "READY") {
				ready <- scanner.Text()
				return
			}
		}
		close(ready)
	}()
	select {
	case line, ok := <-ready:
		if !ok {
			t.Fatalf("replica %d exited before READY", id)
		}
		t.Logf("replica %d: %s", id, line)
	case <-time.After(10 * time.Second):
		t.Fatalf("replica %d did not become ready", id)
	}
	return cmd
}

// reservePorts binds and immediately releases n loopback ports, returning
// their addresses for the cluster's static peer list.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestThreeProcessCluster is the end-to-end deployment test: three replica
// processes on loopback TCP, driven by a front end in this process. A
// non-strict and a strict operation must both complete, and the strict
// read must observe the causally preceding write.
func TestThreeProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	core.RegisterWire()
	peers := reservePorts(t, 3)
	for i := 0; i < 3; i++ {
		spawnReplica(t, i, peers)
	}

	feNet, err := transport.NewTCPNet(transport.TCPConfig{Listen: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer feNet.Close()
	for i, addr := range peers {
		feNet.SetPeer(core.ReplicaNode(label.ReplicaID(i)), addr)
	}
	cluster := core.NewCluster(core.ClusterConfig{
		Replicas:      3,
		DataType:      dtype.Counter{},
		Network:       feNet,
		LocalReplicas: []int{},
	})
	defer cluster.Close()
	feNet.Start()
	fe := cluster.FrontEnd("itest")
	cluster.StartLiveRetransmit(250 * time.Millisecond)

	add, v, err := submitWithDeadline(fe, dtype.CtrAdd{N: 7}, nil, false, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v != "ok" {
		t.Fatalf("non-strict add returned %v", v)
	}
	_, v, err = submitWithDeadline(fe, dtype.CtrRead{}, []ops.ID{add.ID}, true, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(7) {
		t.Fatalf("strict read returned %v, want 7", v)
	}
}

// TestClientModeAgainstCluster drives the -client stdin/stdout interface
// against a real multi-process cluster.
func TestClientModeAgainstCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	peers := reservePorts(t, 3)
	for i := 0; i < 3; i++ {
		spawnReplica(t, i, peers)
	}

	var stdout strings.Builder
	script := strings.NewReader("add 2\nadd 3\nread!\n")
	code := run([]string{"-client", "cli", "-peers", strings.Join(peers, ",")}, script, &stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("client mode exited %d\noutput:\n%s", code, stdout.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 4 { // READY + three responses
		t.Fatalf("client printed %d lines:\n%s", len(lines), stdout.String())
	}
	// The strict read is causally after both adds (prev chaining), so it
	// must observe 5.
	if !strings.HasSuffix(lines[3], "= 5") {
		t.Fatalf("strict read line = %q, want suffix %q", lines[3], "= 5")
	}
}

func TestParseOp(t *testing.T) {
	good := []struct {
		dt, line string
		want     dtype.Operator
	}{
		{"counter", "add 5", dtype.CtrAdd{N: 5}},
		{"counter", "double", dtype.CtrDouble{}},
		{"counter", "read", dtype.CtrRead{}},
		{"register", "write hello", dtype.RegWrite{Val: "hello"}},
		{"register", "read", dtype.RegRead{}},
		{"set", "add x", dtype.SetAdd{Elem: "x"}},
		{"set", "contains x", dtype.SetContains{Elem: "x"}},
		{"log", "append e1", dtype.LogAppend{Entry: "e1"}},
		{"log", "len", dtype.LogLen{}},
		{"bank", "deposit acct 100", dtype.BankDeposit{Account: "acct", Amount: 100}},
		{"bank", "balance acct", dtype.BankBalance{Account: "acct"}},
		{"directory", "setattr a k v", dtype.DirSetAttr{Name: "a", Key: "k", Val: "v"}},
		{"directory", "list", dtype.DirList{}},
	}
	for _, tc := range good {
		got, err := parseOp(tc.dt, tc.line)
		if err != nil {
			t.Errorf("parseOp(%q, %q): %v", tc.dt, tc.line, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseOp(%q, %q) = %#v, want %#v", tc.dt, tc.line, got, tc.want)
		}
	}
	bad := []struct{ dt, line string }{
		{"counter", "add"},
		{"counter", "add five"},
		{"counter", "frobnicate"},
		{"register", "write"},
		{"bank", "deposit acct"},
		{"nosuch", "read"},
	}
	for _, tc := range bad {
		if op, err := parseOp(tc.dt, tc.line); err == nil {
			t.Errorf("parseOp(%q, %q) = %#v, want error", tc.dt, tc.line, op)
		}
	}
}

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{}, "-peers is required"},
		{[]string{"-peers", "a:1,b:2"}, "-id -1 out of range"},
		{[]string{"-peers", "a:1,b:2", "-id", "5"}, "-id 5 out of range"},
		{[]string{"-peers", "a:1,,b:2", "-id", "0"}, "entry 1 is empty"},
		{[]string{"-peers", "a:1", "-id", "0", "-type", "nosuch"}, "unknown data type"},
	}
	for _, tc := range cases {
		_, err := parseFlags(tc.args, os.Stderr)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseFlags(%v) err = %v, want containing %q", tc.args, err, tc.wantErr)
		}
	}
	cfg, err := parseFlags([]string{"-peers", "a:1,b:2,c:3", "-id", "1"}, os.Stderr)
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if cfg.listen != "b:2" {
		t.Errorf("listen defaulted to %q, want the replica's own peers entry", cfg.listen)
	}
}

// TestShardedClientModeAgainstCluster drives the -shards keyspace variant
// end to end: three member processes each hosting their replica of every
// shard, and a keyspace front end routing named objects by consistent
// hash. Strict reads carry per-object prev chains, so each must observe
// exactly its own object's writes.
func TestShardedClientModeAgainstCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	peers := reservePorts(t, 3)
	for i := 0; i < 3; i++ {
		spawnReplica(t, i, peers, "-shards", "4")
	}

	var stdout strings.Builder
	script := strings.NewReader("cart:1 add 2\ncart:1 add 3\ncart:2 add 10\ncart:1 read!\ncart:2 read!\n")
	code := run([]string{"-client", "cli", "-shards", "4", "-peers", strings.Join(peers, ",")}, script, &stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("sharded client mode exited %d\noutput:\n%s", code, stdout.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 6 { // READY + five responses
		t.Fatalf("client printed %d lines:\n%s", len(lines), stdout.String())
	}
	if !strings.HasPrefix(lines[0], "READY client=cli shards=4") {
		t.Fatalf("READY line = %q", lines[0])
	}
	if !strings.HasSuffix(lines[4], "= 5") {
		t.Fatalf("strict read of cart:1 = %q, want suffix %q", lines[4], "= 5")
	}
	if !strings.HasSuffix(lines[5], "= 10") {
		t.Fatalf("strict read of cart:2 = %q, want suffix %q", lines[5], "= 10")
	}
	// Object lines carry the owning shard; the two objects' shard
	// assignments must be consistent between front end and replicas (the
	// responses proved routing worked — this checks the printed form).
	if !strings.HasPrefix(lines[4], "cart:1@") || !strings.HasPrefix(lines[5], "cart:2@") {
		t.Fatalf("response lines lack object@shard prefixes:\n%s", stdout.String())
	}
}
