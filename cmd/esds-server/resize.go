package main

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"time"

	"esds/internal/core"
	"esds/internal/transport"
)

// This file is the multi-process face of live resharding (DESIGN.md §7):
// a small admin protocol over the members' control nodes. `esds-server
// -resize N -peers ...` first tells every member to GROW (create its
// local replicas of the new shards — no keys move yet), then tells member
// 0 to EXECUTE, which runs the in-process migration driver
// (core.Keyspace.Resize) against the whole cluster: member 0 hosts a
// replica of every source shard, so it can export, and the freeze /
// install / complete broadcasts reach the other members' replicas over
// the same TCP transport everything else uses. Stale front-end processes
// need no notification at all — they learn the new topology from
// Redirect replies and replay refused operations at the destinations.

// ResizeCommandMsg drives a member's control node. Without Execute the
// member only grows its local keyspace to NewShards; with Execute it also
// runs the migration driver (member 0 only — the driver needs a local
// replica of every source shard, which every member has, but exactly one
// process must coordinate).
type ResizeCommandMsg struct {
	NewShards int
	Execute   bool
	ReplyTo   transport.NodeID
}

// ResizeStatusMsg answers a ResizeCommandMsg: Phase is "grown", "done",
// or "error".
type ResizeStatusMsg struct {
	From      int
	NewShards int
	Phase     string
	Detail    string
	KeysMoved int
}

var ctlWireOnce sync.Once

// registerCtlWire registers the admin control messages with encoding/gob.
func registerCtlWire() {
	ctlWireOnce.Do(func() {
		gob.Register(ResizeCommandMsg{})
		gob.Register(ResizeStatusMsg{})
	})
}

// ctlNode names member i's control node.
func ctlNode(id int) transport.NodeID {
	return transport.NodeID(fmt.Sprintf("ctl:%d", id))
}

// memberCtl serves a member's control node.
type memberCtl struct {
	id     int
	net    *transport.TCPNet
	ks     *core.Keyspace // nil for unsharded members (resize unsupported)
	stdout io.Writer
	stderr io.Writer

	mu        sync.Mutex
	executing bool
}

// register installs the handler. Growth runs inline (cheap); the
// migration driver runs in its own goroutine so the transport's delivery
// loop keeps draining (the driver's own control acks arrive through it).
func (mc *memberCtl) register() {
	mc.net.Register(ctlNode(mc.id), func(m transport.Message) {
		cmd, ok := m.Payload.(ResizeCommandMsg)
		if !ok {
			return
		}
		mc.handle(cmd)
	})
}

func (mc *memberCtl) reply(cmd ResizeCommandMsg, phase, detail string, keys int) {
	mc.net.Send(ctlNode(mc.id), cmd.ReplyTo, ResizeStatusMsg{
		From: mc.id, NewShards: cmd.NewShards, Phase: phase, Detail: detail, KeysMoved: keys,
	})
}

func (mc *memberCtl) handle(cmd ResizeCommandMsg) {
	if mc.ks == nil {
		mc.reply(cmd, "error", "member is not sharded (-shards 1 runs a single-object cluster; live resharding needs keyspace members, -shards ≥ 2)", 0)
		return
	}
	if cmd.NewShards <= 1 {
		mc.reply(cmd, "error", fmt.Sprintf("invalid shard target %d", cmd.NewShards), 0)
		return
	}
	if !cmd.Execute {
		// GROW: create local replicas of the new shards. EnsureShards is
		// idempotent and never moves keys.
		mc.ks.EnsureShards(cmd.NewShards)
		mc.reply(cmd, "grown", "", 0)
		return
	}
	mc.mu.Lock()
	if mc.executing {
		mc.mu.Unlock()
		mc.reply(cmd, "error", "a resize is already executing", 0)
		return
	}
	mc.executing = true
	mc.mu.Unlock()
	go func() {
		defer func() {
			mc.mu.Lock()
			mc.executing = false
			mc.mu.Unlock()
		}()
		rep, err := mc.ks.Resize(cmd.NewShards)
		if err != nil {
			fmt.Fprintf(mc.stderr, "esds-server: resize to %d shards failed: %v\n", cmd.NewShards, err)
			mc.reply(cmd, "error", err.Error(), 0)
			return
		}
		// RESIZED mirrors READY/RECOVERED: wrappers and the integration
		// test read it; operators should restart members with the new
		// -shards so later cold starts match the live topology.
		fmt.Fprintf(mc.stdout, "RESIZED shards=%d epoch=%d keys=%d installs=%d drained=%d took=%s\n",
			rep.NewShards, rep.Epoch, rep.KeysMoved, rep.Installs, rep.OpsDrained, rep.Duration.Round(time.Millisecond))
		mc.reply(cmd, "done", "", rep.KeysMoved)
	}()
}

// runResizeAdmin is the `esds-server -resize N -peers ...` entry point.
func runResizeAdmin(cfg config, stdout, stderr io.Writer) int {
	logf := func(string, ...any) {}
	if cfg.verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}
	peerTable := make(map[transport.NodeID]string, len(cfg.peers))
	for i, addr := range cfg.peers {
		peerTable[ctlNode(i)] = addr
	}
	// Bind like a client would: any port on loopback by default, or the
	// operator's -listen/-advertise when the members are on other hosts
	// (their status replies dial the admin's advertised address).
	listen := cfg.listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	net, err := transport.NewTCPNet(transport.TCPConfig{Listen: listen, Advertise: cfg.advertise, Peers: peerTable, Logf: logf})
	if err != nil {
		fmt.Fprintf(stderr, "esds-server: %v\n", err)
		return 1
	}
	defer net.Close()
	const admin = transport.NodeID("ctl:admin")
	status := make(chan ResizeStatusMsg, 64)
	net.Register(admin, func(m transport.Message) {
		if s, ok := m.Payload.(ResizeStatusMsg); ok {
			status <- s
		}
	})
	net.Start()

	// Phase 1 — GROW on every member, with retries (the members may still
	// be accepting their first connections).
	grown := make(map[int]bool)
	deadline := time.Now().Add(30 * time.Second)
	for len(grown) < len(cfg.peers) {
		if time.Now().After(deadline) {
			fmt.Fprintf(stderr, "esds-server: resize: %d/%d members never confirmed growth\n", len(grown), len(cfg.peers))
			return 1
		}
		for i := range cfg.peers {
			if !grown[i] {
				net.Send(admin, ctlNode(i), ResizeCommandMsg{NewShards: cfg.resize, ReplyTo: admin})
			}
		}
		timeout := time.After(time.Second)
	collect:
		for len(grown) < len(cfg.peers) {
			select {
			case s := <-status:
				switch {
				case s.Phase == "grown" && s.NewShards == cfg.resize:
					grown[s.From] = true
				case s.Phase == "error":
					fmt.Fprintf(stderr, "esds-server: resize: member %d: %s\n", s.From, s.Detail)
					return 1
				}
			case <-timeout:
				break collect
			}
		}
	}
	fmt.Fprintf(stdout, "GROWN members=%d shards=%d\n", len(cfg.peers), cfg.resize)

	// Phase 2 — EXECUTE on member 0 (sent once; the migration itself is
	// retryable by re-running this admin command).
	net.Send(admin, ctlNode(0), ResizeCommandMsg{NewShards: cfg.resize, Execute: true, ReplyTo: admin})
	execDeadline := time.After(2 * time.Minute)
	for {
		select {
		case s := <-status:
			switch s.Phase {
			case "done":
				fmt.Fprintf(stdout, "RESIZED shards=%d keys=%d\n", s.NewShards, s.KeysMoved)
				fmt.Fprintf(stdout, "note: restart members with -shards %d so later cold starts match the live topology\n", s.NewShards)
				return 0
			case "error":
				fmt.Fprintf(stderr, "esds-server: resize failed at member %d: %s\n", s.From, s.Detail)
				return 1
			}
		case <-execDeadline:
			fmt.Fprintf(stderr, "esds-server: resize: member 0 did not report completion\n")
			return 1
		}
	}
}
