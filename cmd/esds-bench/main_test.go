package main

import "testing"

func TestList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := run([]string{"-exp", "e99"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunSingleFastExperiment(t *testing.T) {
	// E4 is the fastest experiment (~ms); it exercises the whole
	// run-verify-print path.
	if code := run([]string{"-exp", "e4"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}
