// Command esds-bench regenerates the evaluation: every table and figure
// of the reproduction (E1–E16, see the experiment index in DESIGN.md §3).
//
// Usage:
//
//	esds-bench             # run everything
//	esds-bench -exp e2     # run one experiment
//	esds-bench -list       # list experiments
//
// Experiments run on the deterministic discrete-event simulator, so the
// output is reproducible bit-for-bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"esds/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("esds-bench", flag.ContinueOnError)
	which := fs.String("exp", "all", "experiment id (e1..e17) or 'all'")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %-45s %s\n", e.ID, e.Title, e.PaperRef)
		}
		return 0
	}
	var chosen []exp.Experiment
	if *which == "all" {
		chosen = exp.All()
	} else {
		e, ok := exp.ByID(*which)
		if !ok {
			fmt.Fprintf(os.Stderr, "esds-bench: unknown experiment %q (try -list)\n", *which)
			return 2
		}
		chosen = []exp.Experiment{e}
	}
	failures := 0
	for _, e := range chosen {
		start := time.Now()
		table, err := e.Run()
		fmt.Printf("=== %s — %s (%s) [%.1fs]\n\n", e.ID, e.Title, e.PaperRef, time.Since(start).Seconds())
		fmt.Println(table)
		if err != nil {
			failures++
			fmt.Printf("VERIFY FAILED: %v\n\n", err)
		} else {
			fmt.Printf("verify: OK\n\n")
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "esds-bench: %d experiment(s) failed verification\n", failures)
		return 1
	}
	return 0
}
