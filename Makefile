# Targets mirror .github/workflows/ci.yml: `make ci` runs exactly what CI
# runs, so a green local run means a green pipeline.

GO ?= go
SHELL := /bin/bash

.PHONY: build test race bench chaos fmt vet ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 . ./internal/core ./internal/transport ./cmd/esds-server

# Every E1–E10 benchmark body runs exactly once: a harness smoke test, not
# a measurement (E10's sharded sweep runs its full workload even at 1x).
# benchjson tees the output and captures every metric — including the E10
# sharding speedup — into the BENCH_results.json trajectory artifact.
# For real numbers drop -benchtime or raise it.
bench:
	set -o pipefail; $(GO) test -bench . -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson -o BENCH_results.json

# Deterministic fault-injection suite under the race detector: the
# crash/recover/prune chaos matrix (crash timing × prune/snapshot options ×
# gossip loss), the snapshot-recovery and prune×recovery regression tests,
# and the multi-process SIGKILL restart test. Seeds are pinned; sweep others
# with ESDS_CHAOS_SEEDS=7,8,9 make chaos. A failing matrix cell shrinks to a
# minimal reproduction automatically.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestPruneRecovery|TestSnapshot|TestRecover|TestCrash|TestHostile' ./internal/core
	$(GO) test -race -count=1 -run 'TestKillNineRecoveryWithPruning' ./cmd/esds-server

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build vet fmt test race bench

clean:
	$(GO) clean
	rm -f *.test *.prof cpu.out mem.out
