# Targets mirror .github/workflows/ci.yml: `make ci` runs exactly what CI
# runs, so a green local run means a green pipeline.

GO ?= go
SHELL := /bin/bash

.PHONY: build test race bench bench-diff chaos loadlab fmt vet lint ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# GOMAXPROCS=4 forces the shard-per-core worker pool to real parallelism —
# worker-ownership races only interleave when workers actually preempt each
# other, and a 1-core runner would otherwise serialize them away.
race:
	GOMAXPROCS=4 $(GO) test -race -count=1 . ./internal/core ./internal/transport ./cmd/esds-server

# Every E1–E17 benchmark body runs exactly once: a harness smoke test, not
# a measurement (the E10–E17 live-transport experiments run their full
# workloads even at 1x). benchjson tees the output and captures every
# metric — sharding speedup, resize windows, core scaling, durable
# throughput, adaptive-batching wire efficiency — into the
# BENCH_results.json trajectory artifact. For real numbers drop -benchtime
# or raise it.
bench:
	set -o pipefail; $(GO) test -bench . -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson -o BENCH_results.json

# bench-diff regenerates the benchmark artifact into BENCH_fresh.json and
# fails if any benchmark recorded in the committed BENCH_results.json
# disappeared or stopped emitting one of its metrics — the guard against
# silent harness rot — or if an E12 throughput metric fell more than 20%
# below its committed value, or a bytes/op metric rose more than 20% above
# it (-max-regress: throughput baselines are floors, wire baselines are
# ceilings). The gate is scoped to E12–E17 (-regress-match) because their
# steady-state metrics are stable run-to-run, while windowed metrics like
# E11's mid-migration ops/s swing ±2× on identical code; gate more
# benchmarks as their variance is characterized. E12's speedup ratio is
# machine-normalized and holds anywhere; absolute ops/s are not —
# regenerate BENCH_results.json (make bench) on the slowest machine the
# gate must pass on (this repo commits the 1-core reference container's
# numbers, with each gated throughput metric FLOORED at its minimum over
# repeated runs and each gated bytes/op metric CEILINGED at its maximum,
# so run-to-run jitter cannot trip the 20% band in either direction).
# E13's core-scaling ratio and E14's durable/nosync ratio are bounded by
# hardware (physical cores, fsync latency), so both are reported under
# units ("x-scaling", "x-ratio") the gate ignores; the gated `esds-bench
# -exp e13` / `-exp e14` runs enforce them where they are meaningful.
# E16's bytes/op-compact and bytes/op-legacy are the new wire-efficiency
# trajectory: frame layouts, not machine speed, so the ceiling holds on
# any runner. E17's per-member bytes/op figures are placement-geometry
# quantities and hold anywhere for the same reason. BENCH_fresh.json is a
# scratch comparison artifact, deleted once the diff passes — only the
# committed BENCH_results.json trajectory belongs in the tree.
bench-diff:
	set -o pipefail; $(GO) test -bench . -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson -o BENCH_fresh.json -require BENCH_results.json -max-regress 0.2 -regress-match '^BenchmarkE12|^BenchmarkE13|^BenchmarkE14|^BenchmarkE15|^BenchmarkE16|^BenchmarkE17'
	rm -f BENCH_fresh.json

# Deterministic fault-injection suite under the race detector: the
# crash/recover/prune chaos matrix (crash timing × prune/snapshot options ×
# gossip loss, including the group-commit cell over real FileStableStore
# journals), the snapshot-recovery and prune×recovery regression tests,
# the multi-process SIGKILL restart tests (snapshot recovery with pruning,
# and mid-batch durability against the group-commit journal), and the
# live-resharding cell (resize under load, with replicas crashing
# mid-migration, and the multi-process -resize admin path), and the
# placement cell (a placed fleet's hosting member killed mid-load and
# rejoined via range catch-up from surviving co-hosts, DESIGN.md §13).
# Seeds are pinned; sweep others with ESDS_CHAOS_SEEDS=7,8,9 make chaos.
# A failing matrix cell shrinks to a minimal reproduction automatically.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestPruneRecovery|TestSnapshot|TestRecover|TestCrash|TestHostile' ./internal/core
	$(GO) test -race -count=1 -run 'TestKillNine|TestResizeAdminAgainstCluster' ./cmd/esds-server
	$(GO) test -race -count=2 -run 'TestResize' ./internal/core

# Hostile-network load lab under the race detector (DESIGN.md §11): the
# open-loop chaos matrix (profile × seed full-stack cells with a mid-run
# resize), the 30%-loss retransmission+batching regression pin, the
# FaultNet determinism/partition tests, and the latency-histogram tests.
# Seeds are pinned; sweep others with ESDS_CHAOS_SEEDS=7,8,9 make loadlab.
# A failing matrix cell shrinks to a minimal reproduction automatically.
loadlab:
	$(GO) test -race -count=1 ./internal/loadlab
	$(GO) test -race -count=1 -run 'TestRetransmitBatchingUnderLoss' ./internal/core
	$(GO) test -race -count=1 -run 'TestFaultNet' ./internal/transport
	$(GO) test -count=1 -run 'TestHist' ./internal/stats

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint = vet + lintdoc + staticcheck (policy in staticcheck.conf).
# lintdoc fails on any exported symbol of the public esds package without
# a doc comment — the API contract is the godoc. staticcheck is not
# vendored; install with
#   go install honnef.co/go/tools/cmd/staticcheck@2025.1.1
# The CI lint job installs it and fails on findings; locally the target
# degrades to vet-only with a notice when the binary is absent.
lint: vet
	$(GO) run ./cmd/lintdoc .
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; ran go vet only (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi

ci: build lint fmt test race chaos loadlab bench-diff

clean:
	$(GO) clean
	rm -f *.test *.prof cpu.out mem.out BENCH_fresh.json
