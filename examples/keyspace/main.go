// Keyspace: a sharded multi-object service — many independent replicated
// counters partitioned across four ESDS clusters by consistent hash, all
// behind one API, their replicas executed by the shard-per-core worker
// runtime (DESIGN.md §9). Each named object keeps the full ESDS semantics
// (non-strict speed, strict finality, per-object causal sessions); the
// shards give the deployment aggregate throughput a single cluster cannot
// reach (see the E10 experiment: `go run ./cmd/esds-bench -exp e10`, and
// its multi-core companion E13).
//
// Run with:
//
//	go run ./examples/keyspace
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"esds"
)

func main() {
	ks, err := esds.New(esds.Config{
		Shards:         4,
		Replicas:       3,
		DataType:       esds.Counter(),
		GossipInterval: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ks.Close()

	// 16 visitors hammer 8 page-view counters concurrently. Objects land on
	// shards by consistent hash; ops on different shards never contend.
	pages := []string{
		"home", "docs", "pricing", "blog",
		"about", "careers", "support", "status",
	}
	for _, page := range pages {
		fmt.Printf("object %-8q lives on shard %d\n", page, ks.ShardOf(page))
	}

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		views = make(map[string][]esds.ID) // per-page write ids, for strict read prev sets
	)
	for v := 0; v < 16; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			visitor := fmt.Sprintf("visitor%d", v)
			for i := 0; i < 25; i++ {
				page := pages[(v+i)%len(pages)]
				_, id, err := ks.Object(page).Client(visitor).Apply(esds.Add(1))
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				views[page] = append(views[page], id)
				mu.Unlock()
			}
		}(v)
	}
	wg.Wait()
	fmt.Println("16 visitors recorded 400 page views")

	// A per-object causal session: read-your-writes within one object. Its
	// write joins home's prev set below so the report counts it too —
	// strictness alone fixes an operation's position, it does not order it
	// after earlier unconstrained operations.
	sess := ks.Object("home").Client("auditor").Session()
	_, auditID, _ := sess.Apply(esds.Add(1))
	views["home"] = append(views["home"], auditID)
	v, _, _ := sess.Apply(esds.ReadCounter())
	fmt.Printf("auditor session read-your-write on %q -> %v\n", "home", v)

	// Strict totals per object, each ordered (prev) after every recorded
	// view of its page: final values that count all 400 writes. Prev
	// constraints stay within an object's shard — which is all these need.
	var total int64
	for _, page := range pages {
		v, _, err := ks.Object(page).Client("report").ApplyAfter(esds.ReadCounter(), true, views[page]...)
		if err != nil {
			log.Fatal(err)
		}
		total += v.(int64)
	}
	fmt.Printf("strict per-object totals count %d views (400 visitors + 1 auditor)\n", total)

	m := ks.Metrics()
	fmt.Printf("keyspace metrics across %d shards: %d requests, %d labels assigned, %d gossip messages (%d idle rounds suppressed)\n",
		ks.NumShards(), m.RequestsReceived, m.DoItCount, m.GossipSent, m.GossipSuppressed)
}
