// Directory service: the paper's motivating application (§11.2). A
// replicated name service where lookups dominate, updates propagate lazily,
// and the classic create-then-initialize dependency is expressed with prev
// sets: the attribute initialization of a fresh name is constrained to
// follow its creation, so no replica ever applies them in the wrong order.
//
// Run with:
//
//	go run ./examples/directory
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"esds"
)

func main() {
	svc, err := esds.New(esds.Config{
		Replicas:       4,
		DataType:       esds.Directory(),
		GossipInterval: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// An administrator registers services. Each registration is a Bind
	// followed by SetAttrs that carry the Bind in their prev set (§11.2:
	// "include the identifier of the name creation operation in the prev
	// sets of the attribute creation and initialization operations").
	admin := svc.Client("admin")
	services := map[string]map[string]string{
		"printer": {"host": "10.0.0.7", "proto": "ipp"},
		"mail":    {"host": "10.0.0.9", "proto": "smtp"},
		"web":     {"host": "10.0.0.3", "proto": "http"},
	}
	var lastAttr []esds.ID
	for name, attrs := range services {
		_, bindID, _ := admin.Apply(esds.Bind(name))
		for k, v := range attrs {
			_, attrID, _ := admin.ApplyAfter(esds.SetAttr(name, k, v), false, bindID)
			lastAttr = append(lastAttr, attrID)
		}
		fmt.Printf("registered %q with %d attributes\n", name, len(attrs))
	}

	// Query-dominated traffic: many clients resolving names concurrently
	// with fast non-strict lookups (each a single round trip to one
	// replica) — the access pattern §11.2 describes for directory services.
	var wg sync.WaitGroup
	var hits int64
	var mu sync.Mutex
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := svc.Client(fmt.Sprintf("resolver%d", c))
			for i := 0; i < 20; i++ {
				for name := range services {
					if ok, _, _ := client.Apply(esds.Lookup(name)); ok == true {
						mu.Lock()
						hits++
						mu.Unlock()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("resolvers completed %d successful lookups\n", hits)

	// An auditor wants an authoritative snapshot: a strict read ordered
	// after every registration write — guaranteed final.
	auditor := svc.Client("auditor")
	names, _, err := auditor.ApplyAfter(esds.ListNames(), true, lastAttr...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("authoritative name list: %v\n", names)
	for _, name := range names.([]string) {
		host, _, _ := auditor.ApplyAfter(esds.GetAttr(name, "host"), true, lastAttr...)
		fmt.Printf("  %-8s host=%v\n", name, host)
	}
}
