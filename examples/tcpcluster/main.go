// TCP cluster: three ESDS replicas communicating over real loopback
// sockets, assembled in one process for demonstration. Each replica owns
// its own transport.TCPNet, exactly as it would in its own OS process —
// to deploy the members as separate processes, run cmd/esds-server
// instead (same wiring, one member per invocation).
//
// Run with:
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"time"

	"esds/internal/core"
	"esds/internal/dtype"
	"esds/internal/label"
	"esds/internal/ops"
	"esds/internal/transport"
)

func main() {
	// Every process of a TCP cluster must register the wire types before
	// any message is encoded or decoded.
	core.RegisterWire()
	const n = 3

	// Bind one listener per replica first, so the full peer table is known
	// before any member starts talking.
	nets := make([]*transport.TCPNet, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		net, err := transport.NewTCPNet(transport.TCPConfig{Listen: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		defer net.Close()
		nets[i] = net
		addrs[i] = net.Addr().String()
		fmt.Printf("replica %d listening on %s\n", i, addrs[i])
	}

	// Each cluster member instantiates only its own replica
	// (LocalReplicas); the other two are reached through the peer table.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i {
				nets[i].SetPeer(core.ReplicaNode(label.ReplicaID(j)), addrs[j])
			}
		}
		member := core.NewCluster(core.ClusterConfig{
			Replicas:      n,
			DataType:      dtype.Counter{},
			Network:       nets[i],
			Options:       core.DefaultOptions(),
			LocalReplicas: []int{i},
		})
		defer member.Close()
		nets[i].Start()
		member.StartLiveGossip(5 * time.Millisecond)
	}

	// The client runs on its own transport, like a fourth process. The
	// replicas learn its address from its first request, so only the
	// client→replica direction needs configuration.
	feNet, err := transport.NewTCPNet(transport.TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	defer feNet.Close()
	for j := 0; j < n; j++ {
		feNet.SetPeer(core.ReplicaNode(label.ReplicaID(j)), addrs[j])
	}
	feMember := core.NewCluster(core.ClusterConfig{
		Replicas:      n,
		DataType:      dtype.Counter{},
		Network:       feNet,
		LocalReplicas: []int{}, // front-end-only member: no replica here
	})
	defer feMember.Close()
	feNet.Start()
	fe := feMember.FrontEnd("alice")

	// Over real sockets a frame can always be lost; the retransmission
	// ticker is the paper's §6.2 liveness mechanism against that.
	feMember.StartLiveRetransmit(100 * time.Millisecond)

	// A non-strict increment: answered from one replica's local view after
	// a single request/response over TCP.
	add, v, err := fe.SubmitWait(dtype.CtrAdd{N: 42}, nil, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-strict add(42) -> %v\n", v)

	// A strict read causally after the add: the response is withheld until
	// the read's position in the eventual total order is fixed, which
	// takes a few gossip rounds across the sockets.
	_, v, err = fe.SubmitWait(dtype.CtrRead{}, []ops.ID{add.ID}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strict read -> %v (final: serialized after the add on every replica)\n", v)

	stats := feNet.Stats()
	fmt.Printf("client wire traffic: %d messages, %d bytes\n", stats.Sent, stats.Bytes)
}
