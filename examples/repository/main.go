// Distributed repository: the second application class of §11.2 — a
// module/interface repository for a coarse-grained distributed object
// framework (CORBA-style). Access is query-dominated; infrequent interface
// registrations propagate lazily with guaranteed eventual consistency; and
// a deployment step uses a strict read to take a consistent snapshot before
// rolling out.
//
// The repository also demonstrates the bank-style value dependence: version
// activation withdraws from a quota account, so concurrent activations
// cannot exceed the quota in the eventual serialization.
//
// Run with:
//
//	go run ./examples/repository
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"esds"
)

func main() {
	// The repository itself: names are interface ids, attributes hold the
	// implementation metadata.
	repo, err := esds.New(esds.Config{
		Replicas:       3,
		DataType:       esds.Directory(),
		GossipInterval: 4 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	// A quota ledger on the side (same service pattern, Bank data type):
	// each activated module version consumes one deployment slot.
	quota, err := esds.New(esds.Config{
		Replicas:       3,
		DataType:       esds.Bank(),
		GossipInterval: 4 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer quota.Close()
	quota.Client("ops").Session().Apply(esds.Deposit("slots", 3))

	// Publishers register interfaces concurrently. Each publisher uses a
	// causal session so its own register→describe chain is ordered.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var published []esds.ID
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sess := repo.Client(fmt.Sprintf("publisher%d", p)).Session()
			for v := 1; v <= 2; v++ {
				iface := fmt.Sprintf("IDL:acme/Svc%d:%d.0", p, v)
				sess.Apply(esds.Bind(iface))
				sess.Apply(esds.SetAttr(iface, "impl", fmt.Sprintf("lib/svc%d_v%d.so", p, v)))
				_, id, _ := sess.Apply(esds.SetAttr(iface, "status", "published"))
				mu.Lock()
				published = append(published, id)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	fmt.Println("publishers registered 6 interface versions")

	// Dynamic dispatch path: hot, non-strict queries (out-of-date answers
	// are acceptable; the framework retries on miss).
	dispatch := repo.Client("orb")
	found := 0
	for p := 0; p < 3; p++ {
		iface := fmt.Sprintf("IDL:acme/Svc%d:2.0", p)
		if impl, _, _ := dispatch.Apply(esds.GetAttr(iface, "impl")); impl != "" {
			found++
		}
	}
	fmt.Printf("dispatcher resolved %d/3 v2 implementations via fast queries\n", found)

	// Deployment: take a strict snapshot of the repository (ordered after
	// all publishes), then activate up to the quota. Withdrawals are
	// serialized by the ledger, so overshoot is impossible even if several
	// deployers race.
	deployer := repo.Client("deployer")
	snapshot, _, err := deployer.ApplyAfter(esds.ListNames(), true, published...)
	if err != nil {
		log.Fatal(err)
	}
	names := snapshot.([]string)
	fmt.Printf("strict snapshot: %d interfaces registered\n", len(names))

	ledger := quota.Client("deployer").Session()
	activated := 0
	for _, iface := range names {
		if v, _, _ := ledger.Apply(esds.Withdraw("slots", 1)); v == "ok" {
			deployer.Apply(esds.SetAttr(iface, "status", "active"))
			activated++
		}
	}
	remaining, _, _ := ledger.ApplyStrict(esds.Balance("slots"))
	fmt.Printf("activated %d interfaces (quota 3); slots remaining: %v\n", activated, remaining)
}
