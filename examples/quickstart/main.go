// Quickstart: a replicated counter served by three replicas, exercising the
// three consistency levels the ESDS interface offers:
//
//  1. plain non-strict operations (fastest, may be reordered),
//  2. causal sessions (read-your-writes via prev chains),
//  3. strict operations (answered at their final position in the eventual
//     total order).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"esds"
)

func main() {
	svc, err := esds.New(esds.Config{
		Replicas:       3,
		DataType:       esds.Counter(),
		GossipInterval: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// 1. Non-strict writes: one round trip to a single replica, no waiting
	// for replication.
	alice := svc.Client("alice")
	var ids []esds.ID
	for i := 0; i < 5; i++ {
		v, id, err := alice.Apply(esds.Add(10))
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
		fmt.Printf("alice add(10) #%d -> %v\n", i+1, v)
	}

	// A concurrent non-commuting operation from another client — ESDS will
	// serialize it against the adds without any coordination from us.
	bob := svc.Client("bob")
	_, dblID, _ := bob.Apply(esds.Double())
	ids = append(ids, dblID)
	fmt.Println("bob double() -> submitted concurrently")

	// 2. A causal session: each operation is ordered after the session's
	// previous one, so the read is guaranteed to see the write.
	sess := svc.Client("carol").Session()
	sess.Apply(esds.Add(1))
	v, _, _ := sess.Apply(esds.ReadCounter())
	fmt.Printf("carol session read-your-write -> %v\n", v)

	// 3. A strict read ordered after everything above: its value is final —
	// it reflects the single eventual serialization of all those operations
	// and will never be contradicted.
	final, _, err := alice.ApplyAfter(esds.ReadCounter(), true, ids...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strict read (final value) -> %v\n", final)

	m := svc.Metrics()
	fmt.Printf("cluster metrics: %d requests, %d labels assigned, %d gossip messages\n",
		m.RequestsReceived, m.DoItCount, m.GossipSent)
}
