// Benchmarks regenerating the paper's evaluation: one benchmark per
// experiment row of DESIGN.md §3 (E1–E9 on the deterministic simulator,
// E10 on the live transport), plus microbenchmarks of the core algorithm.
// Each experiment benchmark runs the full experiment per iteration and
// reports the headline metric with ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces every table and figure, and `make bench` captures the metrics
// into a BENCH_results.json artifact.
package esds_test

import (
	"testing"
	"time"

	"esds"
	"esds/internal/core"
	"esds/internal/dtype"
	"esds/internal/exp"
	"esds/internal/label"
	"esds/internal/ops"
	"esds/internal/sim"
	"esds/internal/transport"
)

func benchE1Params() exp.E1Params {
	p := exp.DefaultE1Params()
	p.MaxReplicas = 6
	p.RunFor = 500 * sim.Millisecond
	return p
}

// BenchmarkE1ThroughputVsReplicas regenerates the §11.1 scalability figure.
func BenchmarkE1ThroughputVsReplicas(b *testing.B) {
	var r exp.E1Result
	for i := 0; i < b.N; i++ {
		r = exp.RunE1(benchE1Params())
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Fit.Slope, "resp/s/replica")
	b.ReportMetric(r.Fit.R2, "R2")
}

func benchE2Params() exp.E2Params {
	p := exp.DefaultE2Params()
	p.StepPct = 20
	p.RunFor = 500 * sim.Millisecond
	return p
}

// BenchmarkE2LatencyVsStrictPct regenerates the §11.1 strictness figure.
func BenchmarkE2LatencyVsStrictPct(b *testing.B) {
	var r exp.E2Result
	for i := 0; i < b.N; i++ {
		r = exp.RunE2(benchE2Params())
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Fit.Slope*100, "ms/100pct")
	b.ReportMetric(r.Fit.R2, "R2")
}

// BenchmarkE3ResponseTimeBounds regenerates the Theorem 9.3 table.
func BenchmarkE3ResponseTimeBounds(b *testing.B) {
	var r exp.E3Result
	for i := 0; i < b.N; i++ {
		r = exp.RunE3(exp.DefaultE3Params())
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Rows[2].MaxMs, "strict-max-ms")
	b.ReportMetric(r.Rows[2].BoundMs, "strict-bound-ms")
}

// BenchmarkE4StabilizationBound regenerates the Lemma 9.2 table.
func BenchmarkE4StabilizationBound(b *testing.B) {
	var r exp.E4Result
	for i := 0; i < b.N; i++ {
		r = exp.RunE4(exp.DefaultE4Params())
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxMs, "max-ms")
	b.ReportMetric(r.BoundMs, "bound-ms")
}

// BenchmarkE5FaultRecovery regenerates the Theorem 9.4 table.
func BenchmarkE5FaultRecovery(b *testing.B) {
	var r exp.E5Result
	for i := 0; i < b.N; i++ {
		r = exp.RunE5(exp.DefaultE5Params())
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxAfterHealMs, "recovery-ms")
}

func benchAblationParams() exp.AblationParams {
	p := exp.DefaultAblationParams()
	p.Ops = 150
	return p
}

// BenchmarkE6MemoizationAblation regenerates the §10.1 table.
func BenchmarkE6MemoizationAblation(b *testing.B) {
	var r exp.E6Result
	for i := 0; i < b.N; i++ {
		r = exp.RunE6(benchAblationParams())
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Base.Metrics.AppliesForResponse), "applies-base")
	b.ReportMetric(float64(r.Memo.Metrics.AppliesForResponse), "applies-memo")
}

// BenchmarkE7CommuteAblation regenerates the §10.3 table.
func BenchmarkE7CommuteAblation(b *testing.B) {
	var r exp.E7Result
	for i := 0; i < b.N; i++ {
		r = exp.RunE7(benchAblationParams())
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Base.Metrics.AppliesForResponse), "applies-base")
	b.ReportMetric(float64(r.Commute.Metrics.AppliesForCurrentState), "applies-cs")
}

// BenchmarkE8GossipAblation regenerates the §10.4 table.
func BenchmarkE8GossipAblation(b *testing.B) {
	var r exp.E8Result
	for i := 0; i < b.N; i++ {
		r = exp.RunE8(benchAblationParams())
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Full.NetBytes), "bytes-full")
	b.ReportMetric(float64(r.Incr.NetBytes), "bytes-incr")
}

func benchE9Params() exp.E9Params {
	p := exp.DefaultE9Params()
	p.RunFor = 500 * sim.Millisecond
	return p
}

// BenchmarkE9Baselines regenerates the baseline-comparison table.
func BenchmarkE9Baselines(b *testing.B) {
	var r exp.E9Result
	for i := 0; i < b.N; i++ {
		r = exp.RunE9(benchE9Params())
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Rows[0].MeanLatency, "causal-ms")
	b.ReportMetric(r.Rows[1].MeanLatency, "strict-ms")
	b.ReportMetric(r.Rows[3].MeanLatency, "central-ms")
}

// BenchmarkE10ShardedThroughput runs the sharded-keyspace experiment: the
// same multi-object workload against 1, 2, and 4 shards, reporting the
// aggregate speedup of the largest keyspace over the single-cluster
// baseline. The speedup is reported rather than asserted here (wall-clock
// scaling is machine-dependent; `esds-bench -exp e10` runs the gated
// version with the ≥2× requirement).
func BenchmarkE10ShardedThroughput(b *testing.B) {
	p := exp.DefaultShardedParams()
	p.MinSpeedup = 0
	var r exp.ShardedResult
	for i := 0; i < b.N; i++ {
		r = exp.RunSharded(p)
		if err := r.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Speedup, "speedup")
	b.ReportMetric(r.Rows[0].Throughput, "ops/s-baseline")
	b.ReportMetric(r.Rows[len(r.Rows)-1].Throughput, "ops/s-sharded")
	b.ReportMetric(r.Rows[len(r.Rows)-1].P50Ms, "p50-ms")
	b.ReportMetric(r.Rows[len(r.Rows)-1].P99Ms, "p99-ms")
}

// BenchmarkE12BatchedHotPath runs the batched-hot-path experiment: the
// same pipelined increment workload over real loopback TCP sockets, swept
// across (batch size, flush delay) points against the unbatched baseline.
// The speedup is reported rather than asserted here (wall-clock scaling is
// machine-dependent; `esds-bench -exp e12` runs the gated version with the
// ≥2× requirement). Bytes/op are real frame bytes and are structural.
func BenchmarkE12BatchedHotPath(b *testing.B) {
	p := exp.DefaultBatchingParams()
	p.MinSpeedup = 0
	var r exp.BatchingResult
	for i := 0; i < b.N; i++ {
		r = exp.RunBatching(p)
		if err := r.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
	base, best := r.Rows[0], r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.Throughput > best.Throughput {
			best = row
		}
	}
	b.ReportMetric(r.Speedup, "speedup")
	b.ReportMetric(base.Throughput, "ops/s-unbatched")
	b.ReportMetric(best.Throughput, "ops/s-batched")
	b.ReportMetric(base.BytesPerOp, "bytes/op-unbatched")
	b.ReportMetric(best.BytesPerOp, "bytes/op-batched")
	b.ReportMetric(best.P50Ms, "p50-ms")
	b.ReportMetric(best.P99Ms, "p99-ms")
}

// BenchmarkE13CoreScaling runs the shard-per-core runtime experiment: the
// same multi-object increment workload against a fixed 4-shard keyspace at
// 1, 2, and 4 cores, with worker pools sized to the core budget. The
// scaling ratio is reported rather than asserted here (it is bounded by
// the machine's physical cores; `esds-bench -exp e13` runs the gated
// version, whose ≥2× requirement arms only when NumCPU covers the sweep).
// The ratio's unit is deliberately "x-scaling", not "speedup": benchjson
// gates every throughput-shaped metric of a matched benchmark, and on a
// box with fewer cores than the sweep the ratio is scheduler noise — the
// NumCPU-aware experiment gate owns it, the artifact only tracks it.
func BenchmarkE13CoreScaling(b *testing.B) {
	p := exp.DefaultCoreScalingParams()
	p.MinScaling = 0
	var r exp.CoreScalingResult
	for i := 0; i < b.N; i++ {
		r = exp.RunCoreScaling(p)
		if err := r.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Scaling, "x-scaling")
	b.ReportMetric(r.Rows[0].Throughput, "ops/s-1core")
	b.ReportMetric(r.Rows[len(r.Rows)-1].Throughput, "ops/s-maxcores")
	b.ReportMetric(r.Rows[len(r.Rows)-1].P50Ms, "p50-ms")
	b.ReportMetric(r.Rows[len(r.Rows)-1].P99Ms, "p99-ms")
}

// BenchmarkE14DurableThroughput runs the durable group-commit experiment:
// the pipelined increment workload of E12, each sweep point measured over
// real FileStableStore journals both durable (one fsync per admission
// batch, ack-after-durable) and NoSync (page cache only, the
// pre-durability behavior). The durable/nosync ratio at the best batched
// point is the headline: how much of the batched hot path's throughput
// survives crash durability. The ratio is reported rather than asserted
// here (fsync latency is hardware-dependent; `esds-bench -exp e14` runs
// the gated version with the ≥0.5 ratio requirement). The x-ratio unit
// keeps benchjson's throughput gate off a hardware-bound quotient, like
// E13's x-scaling.
func BenchmarkE14DurableThroughput(b *testing.B) {
	p := exp.DefaultDurableParams()
	p.MinRatio = 0
	var r exp.DurableResult
	for i := 0; i < b.N; i++ {
		r = exp.RunDurable(p)
		if err := r.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
	best := r.Rows[len(r.Rows)-1] // the sweep ends on a batched point
	for _, row := range r.Rows {
		if row.BatchSize > 1 && row.Durable > best.Durable {
			best = row
		}
	}
	b.ReportMetric(best.Durable, "ops/s-durable")
	b.ReportMetric(best.NoSync, "ops/s-nosync")
	b.ReportMetric(best.Ratio, "x-ratio")
	b.ReportMetric(best.OpsPerSync, "records/sync")
	b.ReportMetric(best.P50Ms, "p50-ms")
	b.ReportMetric(best.P99Ms, "p99-ms")
}

// BenchmarkE15LoadLab tracks the open-loop latency tail per network
// profile at the highest swept rate. The p99 gate is disabled here (the
// gated run is `esds-bench -exp e15`; latency tails are too
// machine-dependent to floor in BENCH_results.json) — Verify still
// enforces the full audit: liveness, exact read-back, answered-in-order.
// Millisecond units are deliberately tracked-only, never gated.
func BenchmarkE15LoadLab(b *testing.B) {
	p := exp.DefaultLoadLabParams()
	p.MaxP99 = nil
	var r exp.LoadLabResult
	for i := 0; i < b.N; i++ {
		r = exp.RunLoadLab(p)
		if err := r.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
	maxRate := p.Rates[len(p.Rates)-1]
	for _, row := range r.Rows {
		if row.Rate != maxRate {
			continue
		}
		b.ReportMetric(row.P50Ms, "p50-ms-"+row.Profile)
		b.ReportMetric(row.P99Ms, "p99-ms-"+row.Profile)
	}
}

// BenchmarkE16AdaptiveBatching runs the adaptive-batching step-load
// experiment: the open-loop generator stepped low → high → low against
// static batch sizes and the adaptive controller, with the compact gossip
// form measured against the identical legacy-encoded run. The throughput
// and wire gates are disabled here (the gated run is `esds-bench -exp
// e16`); the bytes/op metrics ARE gated by benchjson — they are structural
// frame-layout quantities, and the committed baseline is a ceiling the
// delta encoding must stay under.
func BenchmarkE16AdaptiveBatching(b *testing.B) {
	p := exp.DefaultAdaptiveParams()
	p.MinRatio, p.MinBytesDrop = 0, 0
	var r exp.AdaptiveResult
	for i := 0; i < b.N; i++ {
		r = exp.RunAdaptive(p)
		if err := r.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
	highStep := 0
	for i, rate := range p.Rates {
		if rate > p.Rates[highStep] {
			highStep = i
		}
	}
	var compactBytes, legacyBytes uint64
	var compactAnswered, legacyAnswered int
	for _, row := range r.Rows {
		switch row.Kind {
		case "adaptive":
			compactBytes += row.WireBytes
			compactAnswered += row.Answered
			if row.Step == highStep {
				b.ReportMetric(row.OpsPerSec, "ops/s-adaptive-high")
				b.ReportMetric(row.P99Ms, "p99-ms-adaptive-high")
			}
		case "adaptive-legacy":
			legacyBytes += row.WireBytes
			legacyAnswered += row.Answered
		}
	}
	compact := float64(compactBytes) / float64(compactAnswered)
	legacy := float64(legacyBytes) / float64(legacyAnswered)
	b.ReportMetric(compact, "bytes/op-compact")
	b.ReportMetric(legacy, "bytes/op-legacy")
	b.ReportMetric(1-compact/legacy, "wire-drop-frac")
}

// BenchmarkE17FleetPlacement runs the placement scaling experiment: the
// same 6-shard × 3-replica keyspace deployed on a 3-member fleet (full
// replication forced) and a 6-member fleet (each member hosts half the
// shards), same open-loop workload, strict read-back of every acknowledged
// op. The ≥40% drop gates stay ON — resident shards per member and
// per-member bytes/op are placement-geometry quantities, not machine
// speed, so the gate holds on any runner; benchjson additionally ceilings
// the bytes/op metrics against the committed baseline.
func BenchmarkE17FleetPlacement(b *testing.B) {
	p := exp.DefaultFleetParams()
	var r exp.FleetResult
	for i := 0; i < b.N; i++ {
		r = exp.RunFleet(p)
		if err := r.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	b.ReportMetric(first.BytesPerMemOp, "bytes/op-member-small")
	b.ReportMetric(last.BytesPerMemOp, "bytes/op-member-grown")
	b.ReportMetric(1-last.BytesPerMemOp/first.BytesPerMemOp, "wire-drop-frac")
	b.ReportMetric(first.ResidentMean, "resident-shards-small")
	b.ReportMetric(last.ResidentMean, "resident-shards-grown")
	b.ReportMetric(last.OpsPerSec, "ops/s-grown")
}

// --- Microbenchmarks of the core algorithm ---

// BenchmarkLabelGeneration measures label assignment (ℒ_r partition).
func BenchmarkLabelGeneration(b *testing.B) {
	g := label.NewGenerator(1)
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

// BenchmarkLabelMapMergeMin measures the gossip label merge on a 1k-entry
// snapshot.
func BenchmarkLabelMapMergeMin(b *testing.B) {
	src := label.NewMap()
	for i := 0; i < 1000; i++ {
		src.SetMin(ops.ID{Client: "c", Seq: uint64(i)}, label.Make(uint64(i+1), 0))
	}
	snap := src.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := label.NewMap()
		dst.MergeMin(snap)
	}
}

// BenchmarkGossipRound measures one full-gossip round of a 3-replica
// cluster holding 500 operations.
func BenchmarkGossipRound(b *testing.B) {
	s := sim.New(1)
	net := transport.NewSimNet(s, transport.SimNetConfig{})
	cluster := core.NewCluster(core.ClusterConfig{
		Replicas: 3, DataType: dtype.Counter{}, Network: net,
		Options: core.Options{Memoize: true},
	})
	fe := cluster.FrontEnd("c")
	for i := 0; i < 500; i++ {
		fe.Submit(dtype.CtrAdd{N: 1}, nil, false, nil)
	}
	s.Run(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.GossipAll()
		s.Run(0)
	}
}

// BenchmarkLiveSubmitNonStrict measures the end-to-end latency path of a
// non-strict operation on the live transport. The service is recreated
// every few thousand operations so the measurement reflects a bounded
// history (otherwise per-op gossip cost grows with b.N and the benchmark
// measures history length, not the submit path).
func BenchmarkLiveSubmitNonStrict(b *testing.B) {
	const historyCap = 4000
	var (
		svc    *esds.Service
		client *esds.Client
	)
	fresh := func() {
		if svc != nil {
			svc.Close()
		}
		var err error
		svc, err = esds.New(esds.Config{
			Replicas:       3,
			DataType:       esds.Counter(),
			GossipInterval: time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		client = svc.Client("bench")
	}
	fresh()
	defer func() { svc.Close() }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%historyCap == 0 {
			b.StopTimer()
			fresh()
			b.StartTimer()
		}
		client.Apply(esds.Add(1))
	}
}

// BenchmarkLivePipelinedSubmit measures the pipelined submission hot path
// on the live in-process transport, unbatched vs batched: b.N non-strict
// increments in flight up to a 128-deep window. Run with -benchmem — the
// allocation pass on the label-compare/memoize path and the per-frame
// savings of batching both show up here. The service is recreated every
// few thousand operations so the measurement reflects a bounded history.
func BenchmarkLivePipelinedSubmit(b *testing.B) {
	for _, batch := range []int{1, 32} {
		name := "unbatched"
		if batch > 1 {
			name = "batch-32"
		}
		b.Run(name, func(b *testing.B) {
			const historyCap = 4000
			opt := esds.DefaultOptions()
			opt.BatchSize = batch
			opt.BatchDelay = time.Millisecond
			var (
				svc    *esds.Service
				client *esds.Client
			)
			fresh := func() {
				if svc != nil {
					svc.Close()
				}
				var err error
				svc, err = esds.New(esds.Config{
					Replicas:       3,
					DataType:       esds.Counter(),
					GossipInterval: time.Millisecond,
					Options:        &opt,
				})
				if err != nil {
					b.Fatal(err)
				}
				client = svc.Client("bench")
			}
			fresh()
			defer func() { svc.Close() }()
			window := make(chan struct{}, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%historyCap == 0 {
					b.StopTimer()
					for len(window) > 0 { // drain before teardown
						time.Sleep(time.Millisecond)
					}
					fresh()
					b.StartTimer()
				}
				window <- struct{}{}
				client.ApplyAsync(esds.Add(1), false, nil, func(esds.Response) { <-window })
			}
			for len(window) > 0 {
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// BenchmarkValueComputation contrasts response-value computation with and
// without the memoized solid prefix at a 2000-op history.
func BenchmarkValueComputation(b *testing.B) {
	for _, memo := range []bool{false, true} {
		name := "memoized"
		if !memo {
			name = "recompute"
		}
		b.Run(name, func(b *testing.B) {
			s := sim.New(1)
			net := transport.NewSimNet(s, transport.SimNetConfig{})
			cluster := core.NewCluster(core.ClusterConfig{
				Replicas: 2, DataType: dtype.Counter{}, Network: net,
				Options: core.Options{Memoize: memo},
			})
			cluster.StartSimGossip(s, 5*sim.Millisecond)
			fe := cluster.FrontEnd("c")
			for i := 0; i < 2000; i++ {
				fe.Submit(dtype.CtrAdd{N: 1}, nil, false, nil)
			}
			s.RunFor(2 * sim.Second)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fe.Submit(dtype.CtrRead{}, nil, false, nil)
				s.RunFor(10 * sim.Millisecond)
			}
		})
	}
}

// BenchmarkDataTypeApply measures the serial data types' transition
// functions.
func BenchmarkDataTypeApply(b *testing.B) {
	cases := []struct {
		name string
		dt   dtype.DataType
		op   dtype.Operator
	}{
		{"counter", dtype.Counter{}, dtype.CtrAdd{N: 1}},
		{"register", dtype.Register{}, dtype.RegWrite{Val: "v"}},
		{"set", dtype.Set{}, dtype.SetAdd{Elem: "e"}},
		{"directory", dtype.Directory{}, dtype.DirLookup{Name: "n"}},
		{"log", dtype.Log{}, dtype.LogLen{}},
		{"bank", dtype.Bank{}, dtype.BankDeposit{Account: "a", Amount: 1}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			st := tc.dt.Initial()
			for i := 0; i < b.N; i++ {
				st, _ = tc.dt.Apply(st, tc.op)
			}
			_ = st
		})
	}
}

// BenchmarkE11ResizeUnderLoad runs the online-resharding experiment: a
// 4→8 shard growth under a steady increment load, reporting throughput in
// the pre/during/post windows and the migrated fraction. Verification
// here covers the structural claims (no lost operations, ring-tracking
// key movement); the throughput-dip gates run in `esds-bench -exp e11`
// (wall-clock ratios are machine-dependent).
func BenchmarkE11ResizeUnderLoad(b *testing.B) {
	p := exp.DefaultResizeExpParams()
	p.MinPostRatio, p.MinDuringRatio = 0, 0
	var r exp.ResizeExpResult
	for i := 0; i < b.N; i++ {
		r = exp.RunResizeExp(p)
		if err := r.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Pre.Throughput, "ops/s-pre")
	b.ReportMetric(r.During.Throughput, "ops/s-migrating")
	b.ReportMetric(r.Post.Throughput, "ops/s-post")
	b.ReportMetric(r.MovedFraction, "moved-frac")
	b.ReportMetric(r.ResizeDuration.Seconds()*1000, "resize-ms")
	b.ReportMetric(r.During.P99Ms, "p99-ms-migrating")
	b.ReportMetric(r.Post.P99Ms, "p99-ms-post")
}
