module esds

go 1.24
