module esds

go 1.23
