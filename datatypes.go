package esds

import "esds/internal/dtype"

// This file re-exports the built-in serial data types and typed operator
// constructors, so applications can use the service without importing
// internal packages.

// Counter returns the integer-counter data type (state: int64).
func Counter() DataType { return dtype.Counter{} }

// Add increments the counter by n. Value: "ok".
func Add(n int64) Operator { return dtype.CtrAdd{N: n} }

// Double doubles the counter. Value: "ok". Add and Double do not commute —
// the paper's §10.3 example.
func Double() Operator { return dtype.CtrDouble{} }

// ReadCounter reads the counter (value: int64).
func ReadCounter() Operator { return dtype.CtrRead{} }

// Register returns the read/write register data type (state: string).
func Register() DataType { return dtype.Register{} }

// Write sets the register. Value: "ok".
func Write(v string) Operator { return dtype.RegWrite{Val: v} }

// Read reads the register (value: string).
func Read() Operator { return dtype.RegRead{} }

// StringSet returns the add/remove set data type.
func StringSet() DataType { return dtype.Set{} }

// SetAdd inserts an element. Value: "ok".
func SetAdd(elem string) Operator { return dtype.SetAdd{Elem: elem} }

// SetRemove deletes an element. Value: "ok".
func SetRemove(elem string) Operator { return dtype.SetRemove{Elem: elem} }

// SetContains queries membership (value: bool).
func SetContains(elem string) Operator { return dtype.SetContains{Elem: elem} }

// SetSize queries cardinality (value: int).
func SetSize() Operator { return dtype.SetSize{} }

// Directory returns the name-service data type of the paper's motivating
// application (§11.2): names with attribute sets.
func Directory() DataType { return dtype.Directory{} }

// Bind creates a name. Value: "ok".
func Bind(name string) Operator { return dtype.DirBind{Name: name} }

// Unbind removes a name and its attributes. Value: "ok".
func Unbind(name string) Operator { return dtype.DirUnbind{Name: name} }

// SetAttr sets an attribute of a bound name. Value: "ok", or
// "no-such-name" if the name is unbound — order SetAttr after its Bind
// with a prev constraint, exactly as §11.2 prescribes.
func SetAttr(name, key, val string) Operator {
	return dtype.DirSetAttr{Name: name, Key: key, Val: val}
}

// GetAttr reads an attribute (value: string; "" if absent).
func GetAttr(name, key string) Operator { return dtype.DirGetAttr{Name: name, Key: key} }

// Lookup queries whether a name is bound (value: bool).
func Lookup(name string) Operator { return dtype.DirLookup{Name: name} }

// ListNames returns the sorted bound names (value: []string).
func ListNames() Operator { return dtype.DirList{} }

// Log returns the append-only log data type.
func Log() DataType { return dtype.Log{} }

// Append appends an entry (value: the new length).
func Append(entry string) Operator { return dtype.LogAppend{Entry: entry} }

// ReadLog reads the whole log (value: string, entries joined by "|").
func ReadLog() Operator { return dtype.LogRead{} }

// LogLen reads the entry count (value: int).
func LogLen() Operator { return dtype.LogLen{} }

// Bank returns the multi-account balance data type.
func Bank() DataType { return dtype.Bank{} }

// Deposit adds to an account. Value: "ok".
func Deposit(account string, amount int64) Operator {
	return dtype.BankDeposit{Account: account, Amount: amount}
}

// Withdraw subtracts if the balance suffices. Value: "ok" or
// "insufficient".
func Withdraw(account string, amount int64) Operator {
	return dtype.BankWithdraw{Account: account, Amount: amount}
}

// Balance reads an account balance (value: int64).
func Balance(account string) Operator { return dtype.BankBalance{Account: account} }
